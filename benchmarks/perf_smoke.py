"""CI perf gate: fail when the engine hot path regresses.

Runs the same self-timing workloads as the benches (no pytest needed)
and compares events/sec against the committed ``BENCH_engine.json``
baseline.  A bench failing to reach ``(1 - tolerance)`` of its recorded
events/sec fails the job; benches absent from the baseline are reported
but never fail (so adding a bench doesn't require regenerating the
baseline in the same commit).

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--tolerance 0.30]

CI machines are slower and noisier than the machine that recorded the
baseline, hence the generous default tolerance: this gate catches
algorithmic regressions (an accidental O(k) loop back in observe, a
per-packet heap event), not microarchitectural jitter.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from hotpath_cases import (  # noqa: E402
    make_gap_trace,
    run_engine_fire_events,
    run_engine_handle_events,
    run_engine_run_lane,
    run_ensemble_observe,
    run_fleet_elastic_1k,
    run_pipe_stream,
    run_pipe_stream_slab,
)

BENCH_JSON = pathlib.Path(__file__).resolve().parent / "BENCH_engine.json"
BEST_OF = 5


def _best_rate(runner, *args, **kwargs) -> float:
    best = 0.0
    for _ in range(BEST_OF):
        result = runner(*args, **kwargs)
        events, seconds = result[0], result[1]
        best = max(best, events / seconds)
    return best


def measure(fleet: bool = True) -> dict:
    """Re-run every gated bench; returns bench name → events/sec."""
    trace = make_gap_trace()
    rates = {
        "engine_fire_10k": _best_rate(run_engine_fire_events),
        "engine_handle_10k": _best_rate(run_engine_handle_events),
        "engine_run_lane_1m": _best_rate(run_engine_run_lane),
        "ensemble_observe_fused_100k": _best_rate(
            run_ensemble_observe, trace, fused=True
        ),
        "ensemble_observe_naive_100k": _best_rate(
            run_ensemble_observe, trace, fused=False
        ),
        "pipe_pump_10x1k": _best_rate(run_pipe_stream),
        "pipe_slab_5x10k": _best_rate(run_pipe_stream_slab),
    }
    if fleet:
        # End-to-end arm: every layer at once (transport, slab dataplane,
        # feedback, autoscaler).  One run, not best-of-5 — it dominates
        # the gate's wall clock and its ~30s scale smooths jitter anyway.
        events, seconds, _peak = run_fleet_elastic_1k()
        rates["fleet_elastic_1k"] = events / seconds
    return rates


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional slowdown vs baseline (default 0.30)",
    )
    parser.add_argument(
        "--no-fleet",
        action="store_true",
        help="skip the ~30s fleet_elastic_1k end-to-end arm",
    )
    args = parser.parse_args(argv)

    if not BENCH_JSON.exists():
        print("no %s baseline; nothing to gate against" % BENCH_JSON.name)
        return 0
    baseline = json.loads(BENCH_JSON.read_text(encoding="utf-8"))

    failures = []
    for bench, rate in measure(fleet=not args.no_fleet).items():
        recorded = baseline.get(bench, {}).get("events_per_sec")
        if recorded is None:
            print("%-30s %12.0f ev/s  (no baseline, skipped)" % (bench, rate))
            continue
        floor = recorded * (1.0 - args.tolerance)
        status = "ok" if rate >= floor else "REGRESSION"
        print(
            "%-30s %12.0f ev/s  baseline %12.0f  floor %12.0f  %s"
            % (bench, rate, recorded, floor, status)
        )
        if rate < floor:
            failures.append(bench)

    if failures:
        print(
            "\nFAIL: %s regressed more than %.0f%% below BENCH_engine.json"
            % (", ".join(failures), args.tolerance * 100)
        )
        return 1
    print("\nperf-smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
