"""Self-timing hot-path workloads shared by benches and the CI gate.

Each function runs a fixed-size workload on one of the per-packet hot
layers and returns ``(units, wall_seconds)`` so callers can derive a
throughput.  They are deliberately pure-Python callables with no pytest
dependency: ``test_bench_engine.py`` / ``test_bench_hotpath.py`` wrap
them with pytest-benchmark for timing statistics, while
``perf_smoke.py`` (the CI perf gate) runs them directly and compares
against the committed ``BENCH_engine.json`` baseline.
"""

from __future__ import annotations

import random
import time
from typing import List, Tuple

from repro.core.ensemble import EnsembleConfig, EnsembleTimeout
from repro.net.addr import Endpoint
from repro.net.packet import Packet, PacketSlab
from repro.net.pipe import Pipe
from repro.sim.engine import Simulator
from repro.units import GIGABITS_PER_SECOND, MICROSECONDS


def run_engine_fire_events(n: int = 10_000) -> Tuple[int, float]:
    """Schedule+drain ``n`` fire-and-forget events (the dominant kind)."""
    sim = Simulator()
    sink: List[None] = []
    start = time.perf_counter()
    for i in range(n):
        sim.schedule_fire(i, lambda: sink.append(None))
    sim.run()
    seconds = time.perf_counter() - start
    assert len(sink) == n
    return n, seconds


def run_engine_handle_events(n: int = 10_000) -> Tuple[int, float]:
    """Schedule+drain ``n`` cancellable (EventHandle) events."""
    sim = Simulator()
    sink: List[None] = []
    start = time.perf_counter()
    for i in range(n):
        sim.schedule(i, lambda: sink.append(None))
    sim.run()
    seconds = time.perf_counter() - start
    assert len(sink) == n
    return n, seconds


def run_engine_run_lane(n: int = 1_000_000) -> Tuple[int, float]:
    """Drain an ``n``-event sorted column through the run lane.

    ``schedule_fire_many`` stores the whole column as one run-lane entry
    (no per-event heap pushes), so this measures raw dispatch: the
    engine's ceiling for the batched shapes the slab dataplane produces.
    """
    sim = Simulator()
    noop = _noop
    start = time.perf_counter()
    sim.schedule_fire_many(range(n), noop)
    sim.run()
    seconds = time.perf_counter() - start
    assert sim.events_processed == n
    return n, seconds


def _noop() -> None:
    return None


def make_gap_trace(n: int = 100_000, seed: int = 7) -> List[int]:
    """Arrival times whose gaps straddle the paper's δ ladder.

    Mostly intra-batch gaps (2 µs), with inter-batch pauses at 30 µs,
    300 µs, and occasional multi-epoch idles — the mix the LB actually
    sees, so the fused prefix-roll short-circuits realistically.
    """
    rng = random.Random(seed)
    choices = (2_000, 2_000, 2_000, 30_000, 300_000, 5_000_000)
    trace = []
    t = 0
    for _ in range(n):
        t += rng.choice(choices)
        trace.append(t)
    return trace


def run_ensemble_observe(
    trace: List[int], fused: bool = True
) -> Tuple[int, float]:
    """Feed ``trace`` through one EnsembleTimeout; returns (packets, s)."""
    ensemble = EnsembleTimeout(EnsembleConfig(), fused=fused)
    observe = ensemble.observe
    start = time.perf_counter()
    for now in trace:
        observe(now)
    seconds = time.perf_counter() - start
    return len(trace), seconds


def run_pipe_stream(
    packets: int = 1_000, batches: int = 10
) -> Tuple[int, float, int]:
    """Stream ``batches`` waves of ``packets`` through one 10 Gb/s pipe.

    Returns ``(delivered, seconds, peak_queue_depth)``; the peak depth
    shows the delivery pump holding the engine heap at O(pipes) instead
    of O(packets in flight).
    """
    sim = Simulator()
    pipe = Pipe(
        sim,
        "bench",
        prop_delay=10 * MICROSECONDS,
        bandwidth_bps=10 * GIGABITS_PER_SECOND,
    )
    delivered: List[Packet] = []
    pipe.connect(delivered.append)
    src, dst = Endpoint("a", 1), Endpoint("b", 2)
    start = time.perf_counter()
    for _ in range(batches):
        for _ in range(packets):
            pipe.send(Packet(src=src, dst=dst, payload_len=100))
        sim.run()
    seconds = time.perf_counter() - start
    assert len(delivered) == packets * batches
    return len(delivered), seconds, sim.peak_queue_depth


def run_pipe_stream_slab(
    packets: int = 10_000, batches: int = 5
) -> Tuple[int, float, int]:
    """Slab-mode pipe stream: alloc_batch → send_batch → bulk drain → free.

    Same shape as :func:`run_pipe_stream` but through the slab
    dataplane's vectorized seams: array-structured packet records
    (integer handles) allocated per wave, sent as one batch, delivered
    by the pump's bulk same-instant drain into a batch receiver, and
    recycled wholesale.  This is the slab dataplane's packet ceiling
    the CI gate tracks.
    """
    sim = Simulator()
    slab = PacketSlab()
    pipe = Pipe(sim, "bench", prop_delay=10 * MICROSECONDS, slab=slab)
    src_i = slab.intern_endpoint(Endpoint("a", 1))
    dst_i = slab.intern_endpoint(Endpoint("b", 2))
    fid = slab.intern_flow(src_i, dst_i)
    count = [0]
    free = slab.free
    free_batch = slab.free_batch

    def deliver(handle: int) -> None:
        count[0] += 1
        free(handle)

    def deliver_batch(handles: List[int]) -> None:
        count[0] += len(handles)
        free_batch(handles)

    pipe.connect(deliver)
    pipe.connect_batch(deliver_batch)
    alloc_batch = slab.alloc_batch
    send_batch = pipe.send_batch
    seqs = range(packets)
    start = time.perf_counter()
    for _ in range(batches):
        send_batch(alloc_batch(src_i, dst_i, fid, 0, seqs, 0, 100, None, 0))
        sim.run()
    seconds = time.perf_counter() - start
    assert count[0] == packets * batches
    assert slab.live == 0
    assert sim.events_processed == packets * batches
    return count[0], seconds, sim.peak_queue_depth


def run_fleet_elastic_1k() -> Tuple[int, float, int]:
    """The 1k-backend elastic scale event (the end-to-end gate arm).

    Mirrors ``test_bench_fleet``'s scale-event arm: 100 → 1024 backends
    through a scheduled peak with a mid-run burst.  Unlike the
    microbenches this exercises every layer at once — transport, slab
    dataplane, feedback, autoscaler — so a regression anywhere shows up
    here even when each microbench still passes.
    """
    from repro.harness.elastic import ElasticConfig, run_elastic
    from repro.units import SECONDS

    config = ElasticConfig(
        duration=1 * SECONDS, initial_backends=100, max_backends=1024
    )
    elastic = run_elastic(config)
    result = elastic.result
    return (
        result.wall_events,
        result.wall_seconds,
        elastic.scenario.sim.peak_queue_depth,
    )
