"""Self-timing hot-path workloads shared by benches and the CI gate.

Each function runs a fixed-size workload on one of the per-packet hot
layers and returns ``(units, wall_seconds)`` so callers can derive a
throughput.  They are deliberately pure-Python callables with no pytest
dependency: ``test_bench_engine.py`` / ``test_bench_hotpath.py`` wrap
them with pytest-benchmark for timing statistics, while
``perf_smoke.py`` (the CI perf gate) runs them directly and compares
against the committed ``BENCH_engine.json`` baseline.
"""

from __future__ import annotations

import random
import time
from typing import List, Tuple

from repro.core.ensemble import EnsembleConfig, EnsembleTimeout
from repro.net.addr import Endpoint
from repro.net.packet import Packet
from repro.net.pipe import Pipe
from repro.sim.engine import Simulator
from repro.units import GIGABITS_PER_SECOND, MICROSECONDS


def run_engine_fire_events(n: int = 10_000) -> Tuple[int, float]:
    """Schedule+drain ``n`` fire-and-forget events (the dominant kind)."""
    sim = Simulator()
    sink: List[None] = []
    start = time.perf_counter()
    for i in range(n):
        sim.schedule_fire(i, lambda: sink.append(None))
    sim.run()
    seconds = time.perf_counter() - start
    assert len(sink) == n
    return n, seconds


def run_engine_handle_events(n: int = 10_000) -> Tuple[int, float]:
    """Schedule+drain ``n`` cancellable (EventHandle) events."""
    sim = Simulator()
    sink: List[None] = []
    start = time.perf_counter()
    for i in range(n):
        sim.schedule(i, lambda: sink.append(None))
    sim.run()
    seconds = time.perf_counter() - start
    assert len(sink) == n
    return n, seconds


def make_gap_trace(n: int = 100_000, seed: int = 7) -> List[int]:
    """Arrival times whose gaps straddle the paper's δ ladder.

    Mostly intra-batch gaps (2 µs), with inter-batch pauses at 30 µs,
    300 µs, and occasional multi-epoch idles — the mix the LB actually
    sees, so the fused prefix-roll short-circuits realistically.
    """
    rng = random.Random(seed)
    choices = (2_000, 2_000, 2_000, 30_000, 300_000, 5_000_000)
    trace = []
    t = 0
    for _ in range(n):
        t += rng.choice(choices)
        trace.append(t)
    return trace


def run_ensemble_observe(
    trace: List[int], fused: bool = True
) -> Tuple[int, float]:
    """Feed ``trace`` through one EnsembleTimeout; returns (packets, s)."""
    ensemble = EnsembleTimeout(EnsembleConfig(), fused=fused)
    observe = ensemble.observe
    start = time.perf_counter()
    for now in trace:
        observe(now)
    seconds = time.perf_counter() - start
    return len(trace), seconds


def run_pipe_stream(
    packets: int = 1_000, batches: int = 10
) -> Tuple[int, float, int]:
    """Stream ``batches`` waves of ``packets`` through one 10 Gb/s pipe.

    Returns ``(delivered, seconds, peak_queue_depth)``; the peak depth
    shows the delivery pump holding the engine heap at O(pipes) instead
    of O(packets in flight).
    """
    sim = Simulator()
    pipe = Pipe(
        sim,
        "bench",
        prop_delay=10 * MICROSECONDS,
        bandwidth_bps=10 * GIGABITS_PER_SECOND,
    )
    delivered: List[Packet] = []
    pipe.connect(delivered.append)
    src, dst = Endpoint("a", 1), Endpoint("b", 2)
    start = time.perf_counter()
    for _ in range(batches):
        for _ in range(packets):
            pipe.send(Packet(src=src, dst=dst, payload_len=100))
        sim.run()
    seconds = time.perf_counter() - start
    assert len(delivered) == packets * batches
    return len(delivered), seconds, sim.peak_queue_depth
