"""Seed robustness of the headline (Fig 3) result.

The reproduction's claims must not hinge on one lucky seed: across
independent seeds, the ordering — feedback recovers, Maglev stays
inflated — has to hold every time.  Durations are kept short (the
shape, not the absolute numbers, is under test).

The seeds fan out through the sweep executor: each seed is one
:func:`~repro.harness.figures.fig3_robustness_point` task, so the bench
parallelizes on multi-core runners and row values are raw nanoseconds.
"""

import os

from conftest import write_report

from repro.harness.figures import Fig3Config, fig3_robustness_point
from repro.harness.report import format_table
from repro.sweep import run_tasks, task
from repro.units import MICROSECONDS, MILLISECONDS, to_millis

SEEDS = (3, 11, 47)
DURATION = 1600 * MILLISECONDS
JOBS = min(len(SEEDS), max(1, len(os.sched_getaffinity(0))))


def test_fig3_shape_holds_across_seeds(benchmark):
    tasks = [
        task(
            fig3_robustness_point,
            Fig3Config(seed=seed, duration=DURATION),
            label="seed=%d" % seed,
        )
        for seed in SEEDS
    ]

    report = benchmark.pedantic(
        lambda: run_tasks(tasks, jobs=JOBS), rounds=1, iterations=1
    )
    rows_by_seed = {row["seed"]: row for row in report.rows}
    assert sorted(rows_by_seed) == sorted(SEEDS)

    rows = []
    for seed in SEEDS:
        row = rows_by_seed[seed]
        rows.append(
            (
                seed,
                "%.3f" % to_millis(row["maglev_pre_p95_ns"]),
                "%.3f" % to_millis(row["maglev_post_p95_ns"]),
                "%.3f" % to_millis(row["feedback_pre_p95_ns"]),
                "%.3f" % to_millis(row["feedback_post_p95_ns"]),
            )
        )
    write_report(
        "seed_robustness",
        format_table(
            (
                "seed",
                "maglev pre p95 (ms)",
                "maglev post p95 (ms)",
                "feedback pre p95 (ms)",
                "feedback post p95 (ms)",
            ),
            rows,
        ),
    )

    for seed in SEEDS:
        row = rows_by_seed[seed]
        maglev_pre = row["maglev_pre_p95_ns"]
        maglev_post = row["maglev_post_p95_ns"]
        fb_pre = row["feedback_pre_p95_ns"]
        fb_post = row["feedback_post_p95_ns"]
        # Maglev inflates by a substantial fraction of the injected 1 ms.
        assert maglev_post > maglev_pre + 250 * MICROSECONDS, "seed %d" % seed
        # Feedback stays near its own steady state...
        assert fb_post < fb_pre * 1.3 + 100 * MICROSECONDS, "seed %d" % seed
        # ...and beats Maglev after the fault.
        assert fb_post < maglev_post, "seed %d" % seed
