"""Seed robustness of the headline (Fig 3) result.

The reproduction's claims must not hinge on one lucky seed: across
independent seeds, the ordering — feedback recovers, Maglev stays
inflated — has to hold every time.  Durations are kept short (the
shape, not the absolute numbers, is under test).
"""

from conftest import write_report

from repro.harness.config import PolicyName
from repro.harness.figures import Fig3Config, run_fig3
from repro.harness.report import format_table
from repro.units import MICROSECONDS, MILLISECONDS, to_millis

SEEDS = (3, 11, 47)
DURATION = 1600 * MILLISECONDS


def test_fig3_shape_holds_across_seeds(benchmark):
    def run_all():
        return {
            seed: run_fig3(Fig3Config(seed=seed, duration=DURATION))
            for seed in SEEDS
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for seed, result in results.items():
        settle = DURATION // 8
        rows.append(
            (
                seed,
                "%.3f" % to_millis(result.steady_state_p95("maglev")),
                "%.3f" % to_millis(result.post_injection_p95("maglev", settle)),
                "%.3f" % to_millis(result.steady_state_p95("feedback")),
                "%.3f" % to_millis(result.post_injection_p95("feedback", settle)),
            )
        )
    write_report(
        "seed_robustness",
        format_table(
            (
                "seed",
                "maglev pre p95 (ms)",
                "maglev post p95 (ms)",
                "feedback pre p95 (ms)",
                "feedback post p95 (ms)",
            ),
            rows,
        ),
    )

    for seed, result in results.items():
        settle = DURATION // 8
        maglev_pre = result.steady_state_p95("maglev")
        maglev_post = result.post_injection_p95("maglev", settle)
        fb_pre = result.steady_state_p95("feedback")
        fb_post = result.post_injection_p95("feedback", settle)
        # Maglev inflates by a substantial fraction of the injected 1 ms.
        assert maglev_post > maglev_pre + 250 * MICROSECONDS, "seed %d" % seed
        # Feedback stays near its own steady state...
        assert fb_post < fb_pre * 1.3 + 100 * MICROSECONDS, "seed %d" % seed
        # ...and beats Maglev after the fault.
        assert fb_post < maglev_post, "seed %d" % seed
