"""CLAIM-REACT — §1/§4: "adapts to a server latency inflation of 1 ms
and shifts traffic in milliseconds".

Measures, on the Fig 3 scenario: injection → first weight shift, and
injection → injected server's weight reaching the floor (traffic fully
drained).  The paper's claim is millisecond-scale reaction; we assert
tens of milliseconds as the simulation-scale bound (estimator time
constant + epoch granularity dominate).
"""

from conftest import write_report

from repro.harness.figures import Fig3Config, run_reaction
from repro.harness.report import format_table
from repro.units import MILLISECONDS, SECONDS, to_millis


def test_reaction_time(benchmark):
    config = Fig3Config(duration=2 * SECONDS)
    result = benchmark.pedantic(lambda: run_reaction(config), rounds=1, iterations=1)

    rows = [
        ("injection at", "%.1f ms" % to_millis(result.injection_at)),
        (
            "first shift after injection",
            "-"
            if result.reaction_ns is None
            else "+%.2f ms" % to_millis(result.reaction_ns),
        ),
        (
            "injected server at weight floor",
            "-"
            if result.injected_weight_floor_at is None
            else "+%.2f ms"
            % to_millis(result.injected_weight_floor_at - result.injection_at),
        ),
        ("total shifts in run", result.shifts_total),
    ]
    write_report("reaction_time", format_table(("metric", "value"), rows))

    assert result.reaction_ns is not None
    assert result.reaction_ns < 100 * MILLISECONDS
    assert result.injected_weight_floor_at is not None
    assert result.injected_weight_floor_at - result.injection_at < 500 * MILLISECONDS
