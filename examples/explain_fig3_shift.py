#!/usr/bin/env python3
"""Insight plane: replay Fig 3 from the flight recorder.

Runs the Fig 3 feedback arm with the insight plane armed, then works
entirely from the recorded timeline — no re-running, no tracer.  First
it prints the overview (every shift and SLO alert the recorder saw);
then it explains the first shift that fired *after* the 1 ms delay
injection, walking the causal chain explain reconstructs: the
triggering ``T_LB`` sample, the estimator snapshot from the nearest
recorded frame, the controller's worst/best inputs, and the dominant
upstream cause (which on Fig 3 must be the delay fault itself); and
finally it diffs the recorded run against a different seed to show
where the two histories first diverge.

Run:  python examples/explain_fig3_shift.py
"""

from repro import units
from repro.harness.config import PolicyName
from repro.harness.figures import Fig3Config, run_fig3
from repro.insight import (
    InsightConfig,
    explain_overview,
    explain_shift,
    loads,
    render_diff,
)


def recorded_fig3(seed: int):
    fig3 = run_fig3(
        Fig3Config(
            seed=seed,
            duration=units.seconds(2.0),
            insight=InsightConfig(enabled=True),
        ),
        policies=(PolicyName.FEEDBACK,),
    )
    return fig3, fig3.results[PolicyName.FEEDBACK.value]


def main() -> None:
    fig3, result = recorded_fig3(seed=2)

    print("=== what the flight recorder saw ===")
    print(explain_overview(result))

    shifts = result.scenario.feedback.shift_events()
    post_fault = [
        i for i, s in enumerate(shifts) if s.time >= fig3.config.injection_at
    ]
    assert post_fault, "the injected delay must provoke a shift"

    print()
    print("=== why the first post-fault shift fired ===")
    print(explain_shift(result, post_fault[0]))

    # The same timeline as a portable artifact: serialize, reload, and
    # diff against another seed's history.
    _, other = recorded_fig3(seed=3)
    mine = loads(result.scenario.insight.dumps())
    theirs = loads(other.scenario.insight.dumps())

    print()
    print("=== seed 2 vs seed 3, frame by frame ===")
    print(render_diff(mine, theirs))


if __name__ == "__main__":
    main()
