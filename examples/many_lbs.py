#!/usr/bin/env python3
"""Open question #4: many independent feedback LBs, one server pool.

Three LBs each run their own in-band feedback loop (no shared state)
over the same two servers; a server-side 1 ms slowdown hits mid-run.
Watch each LB independently drain the slow server — and watch the
weight-direction changes that hint at the thundering-herd risk the
paper asks about.

Run:  python examples/many_lbs.py
"""

from repro.harness.multilb import MultiLbConfig, run_multilb
from repro.harness.report import format_table
from repro.units import SECONDS


def main() -> None:
    config = MultiLbConfig(duration=2 * SECONDS, n_lbs=3)
    print(
        "running %d LBs over %d servers; 1 ms server-side fault at t=%.1fs ..."
        % (config.n_lbs, config.n_servers, config.injection_at / 1e9)
    )
    result = run_multilb(config)

    rows = []
    for index in range(config.n_lbs):
        shifts = [e.time for e in result.feedbacks[index].shift_events()]
        weights = result.lbs[index].pool.weights()
        rows.append(
            (
                "lb%d" % index,
                sum(1 for t in shifts if t >= config.injection_at),
                result.oscillations(index),
                "%.2f" % weights[config.injected_server],
            )
        )
    print()
    print(
        format_table(
            ("LB", "shifts after fault", "weight oscillations",
             "final slow-server weight"),
            rows,
        )
    )
    share = result.injected_share_after(
        config.injection_at + config.duration // 4
    )
    print()
    print("pooled traffic share left on the slow server: %.1f%%" % (100 * share))


if __name__ == "__main__":
    main()
