"""Chaos campaign -> violation -> shrunk, replayable reproducer.

Runs a small seeded campaign against a deliberately unachievable
recovery bound (1 ms — the recovery detector's resolution is 100 ms
buckets, so any run the faults actually degrade must violate), then
lets the campaign plane delta-debug the first violating schedule down
to a minimal reproducer artifact and replays it.

This is the full loop an operator would run after a *real* violation:

    python examples/chaos_minimal_reproducer.py
    python -m repro chaos replay <artifact> --store .reproducer-demo-store

Every candidate the shrinker tries goes through the content-addressed
result store, so re-running this script is mostly cache hits.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.campaign import (  # noqa: E402
    CampaignConfig,
    GeneratorConfig,
    load_artifact,
    replay_artifact,
    run_campaign,
)
from repro.sweep.store import ResultStore  # noqa: E402
from repro.units import MILLISECONDS, SECONDS  # noqa: E402

STORE = ".reproducer-demo-store"
ARTIFACTS = ".reproducer-demo"


def main():
    # Single-backend faults never violate anything here — the feedback
    # loop routes around them within milliseconds (the paper's thesis).
    # To manufacture a violation we stack slowdowns until a majority of
    # the backend set can degrade at once, and judge against a 1 ms
    # recovery bound the detector's 100 ms buckets cannot certify.
    config = CampaignConfig(
        seed=1,
        runs=12,
        duration=1 * SECONDS,
        n_servers=3,
        controllers=("alpha",),
        generator=GeneratorConfig(
            kinds=("slowdown",),
            min_faults=2,
            max_faults=3,
            intensity_budget=8.0,
            onset_min=0.10,
            onset_max=0.30,
            window_min=0.15,
            window_max=0.25,
        ),
        invariants=("recovery-bound",),
        recovery_bound=1 * MILLISECONDS,  # unachievable on purpose
        fleet_every=0,
    )
    store = ResultStore(STORE)
    campaign = run_campaign(
        config, store=store, artifact_dir=ARTIFACTS, max_artifacts=1
    )
    print(campaign.table())
    print(campaign.summary())
    if not campaign.artifacts:
        print("no violations -- nothing to shrink (unexpected here)")
        return 0

    path = campaign.artifacts[0]
    point = load_artifact(path)
    print()
    print("reproducer: %s" % path)
    print("  faults after shrinking: %d" % len(point.faults))
    for fault in point.faults:
        print("    %r" % fault)

    _point, row = replay_artifact(path, store=store)
    print("replay verdict: %s (%d violation messages)"
          % (", ".join(row["violated"]) or "clean", row["violations"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
