#!/usr/bin/env python3
"""The paper's Fig 3 story: a 1 ms fault, two load balancers.

Mid-run, 1 ms of delay is injected on the LB→server0 path.  A plain
Maglev LB keeps sending half the connections into the slow path and its
p95 GET latency stays inflated; the latency-aware LB (in-band feedback)
notices within milliseconds — from client→server packets alone — and
shifts traffic away.

Run:  python examples/latency_inflation.py
"""

from repro import units
from repro.harness import Fig3Config, run_fig3
from repro.harness.report import format_table
from repro.units import to_millis


def main() -> None:
    config = Fig3Config(duration=units.seconds(3))
    print(
        "running Fig 3 scenario: 2 servers, 1 ms injected on %s at t=%.1fs ..."
        % (config.injected_server, to_millis(config.injection_at) / 1000)
    )
    result = run_fig3(config)

    maglev = dict(result.p95_series("maglev"))
    feedback = dict(result.p95_series("feedback"))
    rows = []
    for bucket in sorted(set(maglev) | set(feedback)):
        marker = "<-- injection" if bucket == config.injection_at else ""
        rows.append(
            (
                "%.1f" % to_millis(bucket),
                _fmt(maglev.get(bucket)),
                _fmt(feedback.get(bucket)),
                marker,
            )
        )
    print()
    print(format_table(("t (ms)", "maglev p95 (ms)", "feedback p95 (ms)", ""), rows))

    print()
    for policy in ("maglev", "feedback"):
        pre = result.steady_state_p95(policy)
        post = result.post_injection_p95(policy, settle=config.duration // 8)
        print(
            "%-9s p95: %.3f ms before fault -> %.3f ms after"
            % (policy, to_millis(round(pre)), to_millis(round(post)))
        )

    shifts = result.results["feedback"].shift_times()
    after = [t for t in shifts if t >= config.injection_at]
    if after:
        print(
            "feedback LB reacted %.1f ms after the injection (%d total shifts)"
            % (to_millis(after[0] - config.injection_at), len(shifts))
        )


def _fmt(value) -> str:
    return "-" if value is None else "%.3f" % to_millis(value)


if __name__ == "__main__":
    main()
