#!/usr/bin/env python3
"""Resilience plane: crash a server, watch the loop degrade and recover.

Runs the FEEDBACK policy with the full resilience plane enabled
(signal grading, degradation ladder, circuit breakers, health checks,
client retries) against the ``crash`` chaos preset: server0 dies for
the middle third of the run, then restarts.  Prints the degradation
timeline — when the ladder dropped to FALLBACK, when the breaker
opened and re-closed, and when the loop re-earned FEEDBACK mode —
plus the retry plane's accounting.

Run:  python examples/resilience_crash_recovery.py
"""

from repro import units
from repro.faults import preset
from repro.harness import PolicyName, ScenarioConfig
from repro.harness.runner import run_scenario
from repro.resilience import ResilienceConfig


def main() -> None:
    duration = units.seconds(2.0)
    config = ScenarioConfig(
        seed=1,
        duration=duration,
        n_servers=2,
        policy=PolicyName.FEEDBACK,
        faults=preset("crash", duration),
        resilience=ResilienceConfig(enabled=True, health_checks=True),
        warmup=duration // 10,
    )
    result = run_scenario(config)

    print("degradation ladder:")
    for t in result.mode_transitions():
        print(
            "  %9.3fms  %-8s -> %-8s  %s"
            % (units.to_millis(t.time), t.from_mode.name, t.to_mode.name, t.reason)
        )

    print("circuit breakers:")
    for t in result.breaker_transitions():
        print(
            "  %9.3fms  %s: %s -> %s  (%s)"
            % (
                units.to_millis(t.time),
                t.backend,
                t.from_state.name,
                t.to_state.name,
                t.reason,
            )
        )

    stats = result.retry_stats()
    print(
        "retries: %d of %d first attempts "
        "(deadline expiries=%d, aborted connections=%d)"
        % (
            stats.retries,
            stats.first_attempts,
            stats.deadline_expiries,
            stats.aborted_connections,
        )
    )

    onset = min(start for _kind, _targets, start, _end in result.fault_windows())
    fallback_at = result.first_mode_entry("FALLBACK", after=onset)
    assert fallback_at is not None, "the crash must drive the ladder down"
    recovered_at = result.first_mode_entry("FEEDBACK", after=fallback_at)
    assert recovered_at is not None, "the loop must re-earn FEEDBACK mode"
    print(
        "time to FALLBACK after fault onset: %.3f ms"
        % units.to_millis(fallback_at - onset)
    )
    print(
        "time back to FEEDBACK after FALLBACK entry: %.3f ms"
        % units.to_millis(recovered_at - fallback_at)
    )


if __name__ == "__main__":
    main()
