#!/usr/bin/env python3
"""Quickstart: a load-balanced memcached-like cluster in ~20 lines.

Builds the paper's topology — clients → Maglev LB → two servers, with
Direct Server Return — runs one simulated second of a memtier-like
workload, and prints the run report.

Run:  python examples/quickstart.py
"""

from repro import units
from repro.harness import PolicyName, ScenarioConfig, run_scenario


def main() -> None:
    config = ScenarioConfig(
        seed=1,
        duration=units.seconds(1),
        n_clients=1,
        n_servers=2,
        policy=PolicyName.FEEDBACK,   # Maglev + in-band feedback control
        warmup=units.milliseconds(100),
    )
    result = run_scenario(config)
    print(result.report())

    feedback = result.scenario.feedback
    assert feedback is not None
    print()
    print("in-band T_LB samples collected:", feedback.sample_count)
    for estimate in feedback.estimator.snapshot():
        print(
            "  %-10s estimated latency %s (from %d samples)"
            % (
                estimate.backend,
                units.format_ns(round(estimate.value)),
                estimate.samples,
            )
        )


if __name__ == "__main__":
    main()
