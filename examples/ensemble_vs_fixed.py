#!/usr/bin/env python3
"""The paper's Fig 2 story: why the timeout must be learned.

One backlogged TCP flow crosses the LB; its true RTT steps up mid-run.
FIXEDTIMEOUT with a too-small δ floods erroneously low estimates; with a
too-large δ it returns a trickle of inflated ones.  ENSEMBLETIMEOUT
finds the sample cliff each epoch and tracks the truth through the step.

Run:  python examples/ensemble_vs_fixed.py
"""

from repro.harness import BacklogConfig, run_fig2a, run_fig2b
from repro.harness.report import format_table
from repro.units import MICROSECONDS, SECONDS, to_micros


def main() -> None:
    config = BacklogConfig(duration=3 * SECONDS, step_at=3 * SECONDS // 2)
    print("Fig 2(a): FIXEDTIMEOUT with fixed timeouts")
    fig2a = run_fig2a(config)
    truth_pre = fig2a.median_ground_truth(False)
    truth_post = fig2a.median_ground_truth(True)
    rows = []
    for delta, (pre_count, post_count) in sorted(fig2a.sample_counts.items()):
        rows.append(
            (
                "%d us" % (delta // MICROSECONDS),
                pre_count,
                _us(fig2a.median_estimate(delta, False)),
                post_count,
                _us(fig2a.median_estimate(delta, True)),
            )
        )
    rows.append(
        ("ground truth", len(fig2a.ground_truth), _us(truth_pre), "", _us(truth_post))
    )
    print(
        format_table(
            ("timeout", "#pre", "median pre", "#post", "median post"), rows
        )
    )

    print()
    print("Fig 2(b): ENSEMBLETIMEOUT finds the cliff")
    fig2b = run_fig2b(config)
    print(
        format_table(
            ("", "median T_LB", "median T_client", "rel. error"),
            [
                (
                    "before step",
                    _us(fig2b.median_estimate(False)),
                    _us(fig2b.median_ground_truth(False)),
                    "%.1f%%" % (100 * fig2b.tracking_error(False)),
                ),
                (
                    "after step",
                    _us(fig2b.median_estimate(True)),
                    _us(fig2b.median_ground_truth(True)),
                    "%.1f%%" % (100 * fig2b.tracking_error(True)),
                ),
            ],
        )
    )
    print()
    print("chosen timeout per epoch (last 12 epochs):")
    for time_ns, delta in list(fig2b.chosen_timeouts.items())[-12:]:
        print(
            "  t=%5.0f ms  delta_m = %4.0f us"
            % (time_ns / 1e6, to_micros(delta))
        )


def _us(value) -> str:
    return "-" if value is None else "%.0f us" % to_micros(value)


if __name__ == "__main__":
    main()
