#!/usr/bin/env python3
"""Open question #1: what do far clients do to the in-band signal?

The LB controls only the LB→server leg; the client↔LB legs are baked
into every ``T_LB`` sample.  This example moves the client further away
and shows (a) the absolute estimates inflate, but (b) the *difference*
between a slow and a healthy backend — the quantity the controller acts
on — stays pinned to the injected 1 ms.

Run:  python examples/far_clients.py
"""

from repro.harness.ablations import sweep_far_clients
from repro.harness.report import format_table


def main() -> None:
    rows = sweep_far_clients(extra_delays_us=(0, 100, 500, 2000))
    headers = list(rows[0].keys())
    print("1 ms injected on server0 mid-run; measurement only (no control)")
    print()
    print(format_table(headers, [[row[h] for h in headers] for row in rows]))
    print()
    print(
        "Reading: est_injected - est_healthy (gap_us) stays ~1000 us even as\n"
        "the client moves 2 ms away, so ranking-based control still works —\n"
        "but the absolute estimates no longer describe the controllable path."
    )


if __name__ == "__main__":
    main()
