#!/usr/bin/env python3
"""Open question #3: is the server slow, or is its dependency?

Two frontends share one downstream dependency.  The same 1 ms fault is
injected twice — once on a frontend's path, once at the dependency —
and the LB's in-band estimates tell the cases apart: a frontend fault
separates the per-backend estimates by ~the fault; a dependency fault
inflates both together (tiny gap), and no amount of traffic shifting
helps.

Run:  python examples/dependency_fault.py
"""

from repro.app.client import MemtierConfig
from repro.harness.report import format_table
from repro.harness.tiered import TieredScenarioConfig, run_tiered
from repro.telemetry.quantiles import exact_quantile
from repro.units import SECONDS, to_micros


def main() -> None:
    memtier = MemtierConfig(connections=2, pipeline=2, requests_per_connection=100)
    rows = []
    for fault in ("frontend", "dependency"):
        config = TieredScenarioConfig(
            duration=1 * SECONDS, fault=fault, memtier=memtier
        )
        result = run_tiered(config)
        post = [
            r.latency
            for r in result.client.records
            if r.completed_at > config.fault_at + config.duration // 8
        ]
        gap = result.estimate_gap()
        rows.append(
            (
                fault,
                "%.0f" % to_micros(exact_quantile(post, 0.95)),
                "-" if gap is None else "%.0f" % to_micros(gap),
                result.shifts_after_fault(),
            )
        )
    print("1 ms fault, injected at two different places:")
    print()
    print(
        format_table(
            (
                "fault location",
                "post-fault p95 (us)",
                "estimate gap worst-best (us)",
                "shifts after fault",
            ),
            rows,
        )
    )
    print()
    print(
        "Reading: the estimate gap is the in-band tell — ~1000 us when a\n"
        "frontend is genuinely slow (shift!), ~noise when the shared\n"
        "dependency is slow (shifting cannot help)."
    )


if __name__ == "__main__":
    main()
