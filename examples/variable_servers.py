#!/usr/bin/env python3
"""Feedback control against §2.2-style server variability.

Instead of a clean step fault, one server suffers periodic GC-like
pauses and random preemption bursts (the microsecond-scale variability
the paper argues motivates in-band control).  The feedback LB's backend
estimates separate the noisy server from the healthy one, and the
controller steers traffic accordingly.

Run:  python examples/variable_servers.py
"""

import random

from repro import units
from repro.app.server import ServerConfig
from repro.app.servicetime import LogNormal
from repro.app.variability import CompositeInjector, GcPauseInjector, PreemptionInjector
from repro.harness import PolicyName, ScenarioConfig, run_scenario
from repro.harness.report import format_table
from repro.units import MICROSECONDS, MILLISECONDS, to_micros


def main() -> None:
    noisy = ServerConfig(
        service_model=LogNormal(median_ns=50 * MICROSECONDS, sigma=0.4),
        injector=CompositeInjector(
            [
                GcPauseInjector(period=100 * MILLISECONDS, duration=5 * MILLISECONDS),
                PreemptionInjector(
                    random.Random(4),
                    rate_hz=200.0,
                    min_duration=500 * MICROSECONDS,
                    max_duration=2 * MILLISECONDS,
                ),
            ]
        ),
    )
    quiet = ServerConfig(
        service_model=LogNormal(median_ns=50 * MICROSECONDS, sigma=0.4)
    )

    rows = []
    for policy in (PolicyName.MAGLEV, PolicyName.FEEDBACK):
        config = ScenarioConfig(
            seed=21,
            duration=units.seconds(3),
            n_servers=2,
            policy=policy,
            server_overrides=[noisy, quiet],
            warmup=units.milliseconds(200),
        )
        result = run_scenario(config)
        summary = result.summary(start=config.warmup)
        counts = result.per_server_counts()
        total = sum(counts.values()) or 1
        rows.append(
            (
                policy.value,
                "%.0f" % to_micros(summary.p95),
                "%.0f" % to_micros(summary.p99),
                "%.1f%%" % (100 * counts.get("server0", 0) / total),
            )
        )

    print("server0 = GC pauses + preemption bursts; server1 = healthy")
    print()
    print(
        format_table(
            ("policy", "p95 (us)", "p99 (us)", "noisy-server share"), rows
        )
    )


if __name__ == "__main__":
    main()
