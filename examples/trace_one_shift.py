#!/usr/bin/env python3
"""Observability plane: trace one weight shift back to its causes.

Runs the Fig 3 feedback arm with the causal tracer enabled and walks
the paper's causal chain in reverse.  First it lists every weight
shift the controller executed; then it picks the first one and prints
the ``T_LB`` samples the estimator was looking at when it fired (the
last ``window`` samples per involved backend, with the batch window
each sample measured); finally it follows one of those samples back to
a concrete request and prints that request's span tree — client send,
LB routing decision, server-side queue/service split, and the shift
the resulting sample contributed to.

Run:  python examples/trace_one_shift.py
"""

from repro import units
from repro.harness.config import PolicyName
from repro.harness.figures import Fig3Config, run_fig3
from repro.net.addr import FlowKey
from repro.obs import (
    ObsConfig,
    render_request_tree,
    render_shift_attribution,
    render_shift_list,
)


def main() -> None:
    fig3 = run_fig3(
        Fig3Config(
            seed=2,
            duration=units.seconds(2.0),
            obs=ObsConfig(enabled=True),
        ),
        policies=(PolicyName.FEEDBACK,),
    )
    result = fig3.results[PolicyName.FEEDBACK.value]
    scenario = result.scenario
    tracer = scenario.obs.tracer
    shifts = scenario.feedback.shift_events()
    window = scenario.feedback.estimator.config.window
    assert shifts, "the slow server must drive at least one shift"

    print("=== every shift the controller executed ===")
    print(render_shift_list(tracer, shifts, window))

    print()
    print("=== why shift #0 fired ===")
    print(render_shift_attribution(tracer, shifts, 0, window))

    # Follow one contributing sample back to a concrete request: find
    # the last send on the sample's flow before the sample was emitted.
    sample = tracer.contributing_samples(shifts[0], window)[-1]
    vip = scenario.vip
    request_id = None
    for send in tracer.sends:
        if send.time > sample.time:
            break
        if FlowKey(send.client, send.port, vip.host, vip.port) == sample.flow:
            request_id = send.request_id
    assert request_id is not None, "a traced sample implies a traced send"

    print()
    print("=== one request behind that sample ===")
    print(
        render_request_tree(
            tracer,
            request_id,
            shifts,
            window,
            fault_windows=result.fault_windows(),
            vip=vip,
        )
    )


if __name__ == "__main__":
    main()
