#!/usr/bin/env python3
"""Sweep orchestration: an α × seed grid with caching and fan-out.

Expands a declarative `SweepSpec` — the paper's Fig 3 stimulus with the
controller's shift fraction α and the seed as grid axes — and runs it
through the parallel sweep executor twice against the same result
store.  The first pass simulates every point (fanned out across worker
processes); the second is pure cache hits, demonstrating that reruns of
an unchanged sweep cost nothing.

Run:  python examples/sweep_alpha_grid.py
"""

import tempfile

from repro import units
from repro.faults import DelayFault
from repro.harness import PolicyName, ScenarioConfig
from repro.sweep import ResultStore, SweepSpec, run_sweep


def main() -> None:
    duration = units.seconds(0.5)
    spec = SweepSpec(
        name="alpha-grid",
        base=ScenarioConfig(
            duration=duration,
            policy=PolicyName.FEEDBACK,
            faults=[
                DelayFault(
                    start=duration // 2,
                    node="server0",
                    extra=units.milliseconds(1),
                )
            ],
            warmup=units.milliseconds(50),
        ),
        grid={"feedback.controller.alpha": [0.05, 0.1, 0.2]},
        seeds=[1, 2],
    )

    with tempfile.TemporaryDirectory() as root:
        store = ResultStore(root)

        cold = run_sweep(spec, jobs=2, store=store)
        print(cold.summary(spec.name))
        for outcome in cold.outcomes:
            row = outcome.row
            print(
                "  %-20s p95=%sms  shifts=%-3d requests=%d"
                % (outcome.label, row["p95_ms"], row["shifts"], row["requests"])
            )

        warm = run_sweep(spec, jobs=2, store=store)
        print(warm.summary(spec.name))
        assert warm.simulated == 0, "warm rerun must be pure cache hits"
        assert warm.rows == cold.rows, "cached rows must match fresh rows"


if __name__ == "__main__":
    main()
