"""Time-series recorders."""

import pytest

from repro.telemetry.timeseries import BucketedSeries, TimeSeries


class TestTimeSeries:
    def test_append_and_iterate(self):
        series = TimeSeries("x")
        series.append(10, 1.0)
        series.append(20, 2.0)
        assert list(series.items()) == [(10, 1.0), (20, 2.0)]
        assert len(series) == 2

    def test_rejects_time_regression(self):
        series = TimeSeries()
        series.append(100, 1.0)
        with pytest.raises(ValueError):
            series.append(99, 2.0)

    def test_equal_timestamps_allowed(self):
        series = TimeSeries()
        series.append(100, 1.0)
        series.append(100, 2.0)
        assert len(series) == 2

    def test_between_half_open(self):
        series = TimeSeries()
        for t in (10, 20, 30):
            series.append(t, float(t))
        assert series.between(10, 30) == [(10, 10.0), (20, 20.0)]

    def test_last(self):
        series = TimeSeries()
        assert series.last() is None
        series.append(5, 1.5)
        assert series.last() == (5, 1.5)

    def test_values_ordered(self):
        series = TimeSeries()
        series.append(1, 9.0)
        series.append(2, 8.0)
        assert list(series.values) == [9.0, 8.0]
        assert list(series.times) == [1, 2]


class TestBucketedSeries:
    def test_bucket_assignment(self):
        series = BucketedSeries(bucket_ns=100)
        series.append(0, 1.0)
        series.append(99, 2.0)
        series.append(100, 3.0)
        assert series.bucket_indices() == [0, 1]
        assert series.count(0) == 2
        assert series.count(1) == 1

    def test_bucket_start(self):
        series = BucketedSeries(bucket_ns=250)
        assert series.bucket_start(3) == 750

    def test_mean_and_quantile(self):
        series = BucketedSeries(bucket_ns=100)
        for value in (1.0, 2.0, 3.0, 4.0):
            series.append(50, value)
        assert series.mean(0) == pytest.approx(2.5)
        assert series.quantile(0, 0.5) == pytest.approx(2.5)

    def test_empty_bucket_stats_none(self):
        series = BucketedSeries(bucket_ns=100)
        assert series.mean(5) is None
        assert series.quantile(5, 0.5) is None
        assert series.count(5) == 0

    def test_quantile_series(self):
        series = BucketedSeries(bucket_ns=10)
        series.append(5, 1.0)
        series.append(15, 3.0)
        series.append(17, 5.0)
        rows = series.quantile_series(1.0)
        assert rows == [(0, 1.0), (10, 5.0)]

    def test_custom_reducer(self):
        series = BucketedSeries(bucket_ns=10)
        series.append(1, 2.0)
        series.append(2, 4.0)
        assert series.series(max) == [(0, 4.0)]

    def test_width_validation(self):
        with pytest.raises(ValueError):
            BucketedSeries(bucket_ns=0)

    def test_unordered_appends_allowed(self):
        # Unlike TimeSeries, buckets don't require monotone time.
        series = BucketedSeries(bucket_ns=10)
        series.append(55, 1.0)
        series.append(5, 2.0)
        assert series.bucket_indices() == [0, 5]
