"""The in-band feedback loop wired onto a load balancer."""

import pytest

from repro.core.ensemble import EnsembleConfig
from repro.core.estimator import EstimatorConfig
from repro.core.feedback import FeedbackConfig, InbandFeedback
from repro.lb.backend import Backend, BackendPool
from repro.lb.dataplane import LoadBalancer
from repro.lb.policies import MaglevPolicy
from repro.net.addr import Endpoint
from repro.net.network import Network
from repro.net.packet import Packet, TcpFlags
from repro.units import MICROSECONDS, MILLISECONDS


class RecorderNode:
    def __init__(self, name):
        self.name = name
        self.received = []

    def on_packet(self, packet):
        self.received.append(packet)


def build(sim, control=True, min_samples=1):
    network = Network(sim)
    client = RecorderNode("client")
    network.add_node(client)
    pool = BackendPool([Backend("s0"), Backend("s1")])
    lb = LoadBalancer(
        network, "lb", Endpoint("vip", 80), pool, MaglevPolicy(pool, 251)
    )
    for name in ("s0", "s1"):
        node = RecorderNode(name)
        network.add_node(node)
        network.connect("lb", name, prop_delay=10)
    network.connect("client", "lb", prop_delay=10)
    network.set_default_route("client", "lb")
    config = FeedbackConfig(
        estimator=EstimatorConfig(min_samples=min_samples),
        control=control,
    )
    feedback = InbandFeedback(lb, config)
    return network, lb, pool, feedback


def drive_flow(sim, network, port, batch_times, burst=3,
               intra_gap=2 * MICROSECONDS):
    """Inject client→VIP packets in batches at the given times."""
    for batch_start in batch_times:
        for i in range(burst):
            when = batch_start + i * intra_gap
            flags = TcpFlags.SYN if (batch_start == batch_times[0] and i == 0) else TcpFlags.ACK

            def fire(w=when, f=flags, p=port):
                network.send_from(
                    "client",
                    Packet(
                        src=Endpoint("client", p),
                        dst=Endpoint("vip", 80),
                        flags=f,
                        payload_len=100,
                    ),
                )

            sim.schedule_at(when, fire)


class TestMeasurement:
    def test_produces_samples_from_batches(self, sim):
        network, lb, pool, feedback = build(sim, control=False)
        batches = [i * 500 * MICROSECONDS for i in range(400)]
        drive_flow(sim, network, 40_000, batches)
        sim.run()
        assert feedback.sample_count > 50
        # Samples approximate the 500us batch interval.
        values = [s.t_lb for s in feedback.samples]
        median = sorted(values)[len(values) // 2]
        assert median == pytest.approx(500 * MICROSECONDS, rel=0.1)

    def test_samples_attributed_to_flow_backend(self, sim):
        network, lb, pool, feedback = build(sim, control=False)
        batches = [i * 500 * MICROSECONDS for i in range(300)]
        drive_flow(sim, network, 40_000, batches)
        sim.run()
        backends = {s.backend for s in feedback.samples}
        assert len(backends) == 1  # one flow, one backend
        assert backends <= {"s0", "s1"}

    def test_sample_series_recorded(self, sim):
        network, lb, pool, feedback = build(sim, control=False)
        drive_flow(sim, network, 40_000, [i * 500 * MICROSECONDS for i in range(200)])
        sim.run()
        (backend,) = feedback.sample_series
        series = feedback.sample_series[backend]
        assert len(series) == feedback.sample_count

    def test_record_samples_can_be_disabled(self, sim):
        network, lb, pool, _ = build(sim)
        config = FeedbackConfig(control=False, record_samples=False)
        feedback = InbandFeedback(lb, config)
        drive_flow(sim, network, 41_000, [i * 500 * MICROSECONDS for i in range(100)])
        sim.run()
        assert feedback.sample_count > 0
        assert feedback.samples == []

    def test_fin_clears_flow_state(self, sim):
        network, lb, pool, feedback = build(sim, control=False)
        drive_flow(sim, network, 40_000, [i * 500 * MICROSECONDS for i in range(10)])
        sim.run()
        assert len(feedback.flows) == 1
        network.send_from(
            "client",
            Packet(
                src=Endpoint("client", 40_000),
                dst=Endpoint("vip", 80),
                flags=TcpFlags.FIN | TcpFlags.ACK,
            ),
        )
        sim.run()
        assert len(feedback.flows) == 0


class TestRetransmissionDetection:
    def test_duplicate_sequence_taints_next_sample(self, sim):
        network, lb, pool, _ = build(sim)
        config = FeedbackConfig(control=False, censor_retransmissions=True)
        feedback = InbandFeedback(lb, config)

        def send(seq, when, flags=TcpFlags.ACK):
            sim.schedule_at(
                when,
                lambda: network.send_from(
                    "client",
                    Packet(
                        src=Endpoint("client", 42_000),
                        dst=Endpoint("vip", 80),
                        flags=flags,
                        seq=seq,
                        payload_len=100,
                    ),
                ),
            )

        # Batch 1, then a retransmission of its segment, then batch 2.
        send(0, 0, flags=TcpFlags.SYN)
        send(1, 500 * MICROSECONDS)
        send(1, 1000 * MICROSECONDS)          # duplicate: retransmission
        send(101, 1500 * MICROSECONDS)        # fresh data, new batch
        sim.run()
        assert feedback.censored_samples > 0

    def test_monotone_flow_produces_uncensored_samples(self, sim):
        network, lb, pool, _ = build(sim)
        config = FeedbackConfig(control=False, censor_retransmissions=True)
        feedback = InbandFeedback(lb, config)
        seq = 0
        for batch in range(200):
            when = batch * 500 * MICROSECONDS
            flags = TcpFlags.SYN if batch == 0 else TcpFlags.ACK
            current = seq

            def fire(s=current, w=when, f=flags):
                network.send_from(
                    "client",
                    Packet(
                        src=Endpoint("client", 44_000),
                        dst=Endpoint("vip", 80),
                        flags=f,
                        seq=s,
                        payload_len=100,
                    ),
                )

            sim.schedule_at(when, fire)
            seq += 101 if batch == 0 else 100
        sim.run()
        assert feedback.censored_samples == 0
        assert feedback.sample_count > 50


class TestControl:
    def test_no_shifts_in_measure_only_mode(self, sim):
        network, lb, pool, feedback = build(sim, control=False)
        drive_flow(sim, network, 40_000, [i * 500 * MICROSECONDS for i in range(200)])
        sim.run()
        assert feedback.controller is None
        assert feedback.shift_events() == []
        assert pool.weights() == {"s0": 1.0, "s1": 1.0}

    def test_shifts_away_from_slow_backend(self, sim):
        network, lb, pool, feedback = build(sim, control=True)
        # Two flows pinned to different backends with different batch
        # intervals (one 'slow', one 'fast').  Find ports that Maglev
        # maps to distinct backends.
        table = lb.policy.table
        port_fast = next(
            p for p in range(40_000, 41_000)
            if table.lookup_flow(str(Packet(
                src=Endpoint("client", p), dst=Endpoint("vip", 80)).flow)) == "s0"
        )
        port_slow = next(
            p for p in range(40_000, 41_000)
            if table.lookup_flow(str(Packet(
                src=Endpoint("client", p), dst=Endpoint("vip", 80)).flow)) == "s1"
        )
        drive_flow(sim, network, port_fast,
                   [i * 500 * MICROSECONDS for i in range(400)])
        drive_flow(sim, network, port_slow,
                   [i * 2 * MILLISECONDS for i in range(100)])
        sim.run()
        weights = pool.weights()
        assert weights["s1"] < weights["s0"]
        assert feedback.shift_events()
        assert feedback.shift_events()[0].from_backend == "s1"
