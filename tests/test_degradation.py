"""The degradation ladder: FEEDBACK → HOLD → FALLBACK with hysteresis.

Pure state-machine tests against a pool and a quality tracker driven
by hand — no simulator.  The invariants under test: downgrades are
immediate, upgrades wait out ``reentry_hold``, FALLBACK relaxes the
pool to uniform weights and logs a ``mode-change`` shift, and leaving
FALLBACK tags the controller's next shift as the post-fallback
rebalance.
"""

import pytest

from repro.lb.backend import Backend, BackendPool
from repro.resilience.ladder import (
    ControllerMode,
    DegradationConfig,
    DegradationLadder,
)
from repro.resilience.quality import SignalQualityConfig, SignalQualityTracker
from repro.units import MILLISECONDS


class ControllerStub:
    """Just enough of AlphaShiftController for the ladder to talk to."""

    def __init__(self):
        self.shifts = []
        self.pending_reason = None

    def record_shift(self, event):
        self.shifts.append(event)


def build(n=2, controller=None, **ladder_kwargs):
    pool = BackendPool([Backend("s%d" % i) for i in range(n)])
    tracker = SignalQualityTracker(
        SignalQualityConfig(
            window=100 * MILLISECONDS,
            stale_after=50 * MILLISECONDS,
            invalid_after=200 * MILLISECONDS,
            min_samples=1,
        )
    )
    defaults = dict(
        fallback_fraction=0.5,
        reentry_hold=100 * MILLISECONDS,
        check_interval=10 * MILLISECONDS,
    )
    defaults.update(ladder_kwargs)
    ladder = DegradationLadder(
        pool, tracker, DegradationConfig(**defaults), controller=controller
    )
    return pool, tracker, ladder


def all_fresh(tracker, pool, now):
    for name in pool.names():
        tracker.observe(name, now, 1.0)


class TestLadderWalk:
    def test_starts_in_hold(self):
        _, _, ladder = build()
        assert ladder.mode is ControllerMode.HOLD

    def test_upgrade_requires_persistence(self):
        """Fresh signal must hold for reentry_hold before FEEDBACK."""
        pool, tracker, ladder = build()
        t0 = 10 * MILLISECONDS
        all_fresh(tracker, pool, t0)
        assert ladder.evaluate(t0) is ControllerMode.HOLD  # candidate armed
        all_fresh(tracker, pool, 50 * MILLISECONDS)  # keep the signal fresh
        assert ladder.evaluate(55 * MILLISECONDS) is ControllerMode.HOLD
        all_fresh(tracker, pool, 105 * MILLISECONDS)
        assert (
            ladder.evaluate(t0 + 100 * MILLISECONDS) is ControllerMode.FEEDBACK
        )

    def test_flapping_signal_cannot_pump_the_ladder(self):
        """Candidate resets whenever the target degrades mid-hold."""
        pool, tracker, ladder = build()
        all_fresh(tracker, pool, 0)
        ladder.evaluate(0)  # candidate FEEDBACK armed at t=0
        all_fresh(tracker, pool, 40 * MILLISECONDS)
        # Signal goes stale before the hold elapses: candidate dropped.
        ladder.evaluate(95 * MILLISECONDS)
        assert ladder.mode is ControllerMode.HOLD
        # Fresh again; the clock must restart, not resume.
        all_fresh(tracker, pool, 100 * MILLISECONDS)
        ladder.evaluate(100 * MILLISECONDS)
        all_fresh(tracker, pool, 140 * MILLISECONDS)
        # 145 ms of cumulative freshness since t=0, but only 45 since
        # the restart: still holding.
        assert ladder.evaluate(145 * MILLISECONDS) is ControllerMode.HOLD
        all_fresh(tracker, pool, 190 * MILLISECONDS)
        assert ladder.evaluate(200 * MILLISECONDS) is ControllerMode.FEEDBACK

    def test_downgrade_is_immediate(self):
        pool, tracker, ladder = build()
        all_fresh(tracker, pool, 0)
        ladder.evaluate(0)
        all_fresh(tracker, pool, 99 * MILLISECONDS)
        ladder.evaluate(100 * MILLISECONDS)
        assert ladder.mode is ControllerMode.FEEDBACK
        # s0 goes silent; first evaluation past stale_after drops to HOLD.
        tracker.observe("s1", 160 * MILLISECONDS, 1.0)
        assert ladder.evaluate(160 * MILLISECONDS) is ControllerMode.HOLD
        reason = ladder.transitions[-1].reason
        assert "s0" in reason and "stale" in reason

    def test_collapse_to_fallback(self):
        """Half the pool invalid: stop ranking, go uniform."""
        pool, tracker, ladder = build(n=2)
        tracker.observe("s1", 0, 1.0)
        # s0 never registered → INVALID; 1/2 usable ≤ 0.5 → FALLBACK.
        assert ladder.evaluate(10 * MILLISECONDS) is ControllerMode.FALLBACK
        assert "collapse" in ladder.transitions[-1].reason

    def test_empty_pool_is_fallback(self):
        pool, tracker, ladder = build(n=0)
        assert ladder.evaluate(0) is ControllerMode.FALLBACK
        assert ladder.transitions[-1].reason == "empty pool"

    def test_transition_records_grades(self):
        pool, tracker, ladder = build(n=2)
        tracker.observe("s1", 0, 1.0)
        ladder.evaluate(10 * MILLISECONDS)
        grades = ladder.transitions[-1].grades
        assert grades == {"s0": "invalid", "s1": "fresh"}

    def test_entries_filters_by_mode(self):
        pool, tracker, ladder = build(n=2)
        tracker.observe("s1", 0, 1.0)
        ladder.evaluate(10 * MILLISECONDS)  # HOLD → FALLBACK
        assert ladder.entries(ControllerMode.FALLBACK) == [10 * MILLISECONDS]
        assert ladder.entries(ControllerMode.FEEDBACK) == []

    def test_mode_series_tracks_severity(self):
        pool, tracker, ladder = build(n=2)
        tracker.observe("s1", 0, 1.0)
        ladder.evaluate(10 * MILLISECONDS)
        points = list(ladder.mode_series.items())
        assert points[0][1] == 1.0  # seeded at HOLD
        assert points[-1][1] == 2.0  # FALLBACK


class TestFallbackPosture:
    def test_fallback_relaxes_weights_to_uniform(self):
        pool, tracker, ladder = build(n=2)
        pool.set_weights({"s0": 3.0, "s1": 1.0})
        tracker.observe("s1", 0, 1.0)
        ladder.evaluate(10 * MILLISECONDS)
        weights = pool.weights()
        assert weights["s0"] == pytest.approx(weights["s1"])
        assert sum(weights.values()) == pytest.approx(4.0)  # total preserved

    def test_fallback_logs_mode_change_shift(self):
        controller = ControllerStub()
        pool, tracker, ladder = build(n=2, controller=controller)
        tracker.observe("s1", 0, 1.0)
        ladder.evaluate(10 * MILLISECONDS)
        assert len(controller.shifts) == 1
        event = controller.shifts[0]
        assert event.reason == "mode-change"
        assert event.from_backend == "*"

    def test_leaving_fallback_tags_the_next_shift(self):
        controller = ControllerStub()
        pool, tracker, ladder = build(n=2, controller=controller)
        tracker.observe("s1", 0, 1.0)
        ladder.evaluate(10 * MILLISECONDS)
        assert ladder.mode is ControllerMode.FALLBACK
        # Recovery: both backends fresh, persisting past reentry_hold.
        all_fresh(tracker, pool, 20 * MILLISECONDS)
        ladder.evaluate(20 * MILLISECONDS)
        all_fresh(tracker, pool, 119 * MILLISECONDS)
        ladder.evaluate(120 * MILLISECONDS)
        assert ladder.mode is ControllerMode.FEEDBACK
        assert controller.pending_reason == "post-fallback-rebalance"


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(fallback_fraction=-0.1),
            dict(fallback_fraction=1.0),
            dict(reentry_hold=-1),
            dict(check_interval=0),
        ],
    )
    def test_rejects_malformed(self, kwargs):
        with pytest.raises(ValueError):
            build(**kwargs)
