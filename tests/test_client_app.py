"""Client applications: memtier-like generator and the backlogged flow."""

import pytest

from repro.app.client import BacklogClient, MemtierClient, MemtierConfig
from repro.app.protocol import Op
from repro.app.server import ServerApp, ServerConfig, SinkApp
from repro.app.workload import OpMixer, WorkloadModel
from repro.net.addr import Endpoint
from repro.sim.random import RandomStreams
from repro.units import MICROSECONDS, MILLISECONDS, SECONDS


def attach_server(pair):
    streams = RandomStreams(0)
    return ServerApp(pair.server, ServerConfig(port=7000), streams.get("svc"))


def make_client(pair, **overrides):
    defaults = dict(connections=2, pipeline=2, requests_per_connection=10)
    defaults.update(overrides)
    config = MemtierConfig(**defaults)
    streams = RandomStreams(1)
    return MemtierClient(
        pair.client, Endpoint("server", 7000), config, streams.get("wl")
    )


class TestMemtierClient:
    def test_generates_and_records_requests(self, sim, pair):
        attach_server(pair)
        client = make_client(pair)
        client.start()
        sim.run_until(100 * MILLISECONDS)
        client.stop()
        assert client.completed_requests > 10
        record = client.records[0]
        assert record.latency == record.completed_at - record.sent_at
        assert record.server == "server"

    def test_pipeline_limits_outstanding(self, sim, pair):
        attach_server(pair)
        client = make_client(pair, connections=1, pipeline=3,
                             requests_per_connection=100)
        client.start()
        # At any instant, outstanding <= pipeline; sample a few times.
        for t in range(1, 6):
            sim.run_until(t * MILLISECONDS)
            loops = list(client._conn_state.values())
            assert all(len(l.outstanding) <= 3 for l in loops)

    def test_connection_churn_reopens(self, sim, pair):
        attach_server(pair)
        client = make_client(
            pair,
            connections=1,
            pipeline=1,
            requests_per_connection=5,
            reconnect_delay=100 * MICROSECONDS,
        )
        client.start()
        sim.run_until(200 * MILLISECONDS)
        client.stop()
        # Far more than 5 requests completed => connection was recycled.
        assert client.completed_requests > 20

    def test_stop_halts_new_requests(self, sim, pair):
        attach_server(pair)
        client = make_client(pair)
        client.start()
        sim.run_until(20 * MILLISECONDS)
        client.stop()
        count = client.completed_requests
        sim.run_until(100 * MILLISECONDS)
        # A few in-flight stragglers may finish, then it stays flat.
        assert client.completed_requests <= count + 4

    def test_latencies_filter_by_op(self, sim, pair):
        attach_server(pair)
        client = make_client(
            pair,
            workload=WorkloadModel(ops=OpMixer(get_ratio=1.0)),
        )
        client.start()
        sim.run_until(50 * MILLISECONDS)
        assert client.latencies(Op.SET) == []
        assert len(client.latencies(Op.GET)) == client.completed_requests
        assert len(client.latencies()) == client.completed_requests

    def test_on_record_callback(self, sim, pair):
        attach_server(pair)
        client = make_client(pair)
        seen = []
        client.on_record = seen.append
        client.start()
        sim.run_until(20 * MILLISECONDS)
        assert len(seen) == client.completed_requests

    def test_think_time_slows_request_rate(self, sim, pair):
        attach_server(pair)
        fast = make_client(pair, connections=1, pipeline=1,
                           requests_per_connection=10_000)
        fast.start()
        sim.run_until(50 * MILLISECONDS)
        fast.stop()

        pair2_sim_requests = fast.completed_requests
        # Re-run with think time on a fresh topology.
        from tests.conftest import PairTopology
        from repro.sim.engine import Simulator

        sim2 = Simulator()
        pair2 = PairTopology(sim2)
        attach_server(pair2)
        slow_config = MemtierConfig(
            connections=1,
            pipeline=1,
            requests_per_connection=10_000,
            think_time=2 * MILLISECONDS,
        )
        slow = MemtierClient(
            pair2.client, Endpoint("server", 7000), slow_config,
            RandomStreams(1).get("wl"),
        )
        slow.start()
        sim2.run_until(50 * MILLISECONDS)
        slow.stop()
        assert slow.completed_requests < pair2_sim_requests / 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MemtierConfig(connections=0).validate()
        with pytest.raises(ValueError):
            MemtierConfig(pipeline=0).validate()
        with pytest.raises(ValueError):
            MemtierConfig(requests_per_connection=0).validate()
        with pytest.raises(ValueError):
            MemtierConfig(reconnect_delay=-1).validate()
        with pytest.raises(ValueError):
            MemtierConfig(think_time=-1).validate()


class TestBacklogClient:
    def test_stays_window_limited(self, sim, pair):
        SinkApp(pair.server, 7000)
        client = BacklogClient(pair.client, Endpoint("server", 7000))
        sim.run_until(100 * MILLISECONDS)
        # The send buffer stays topped up to ~2 windows.
        assert client.conn.unsent_bytes >= client.conn.config.window

    def test_collects_rtt_ground_truth(self, sim, pair):
        SinkApp(pair.server, 7000)
        client = BacklogClient(pair.client, Endpoint("server", 7000))
        sim.run_until(100 * MILLISECONDS)
        assert len(client.rtt_samples) > 50
        rtt = 2 * pair.one_way
        median = sorted(s for _t, s in client.rtt_samples)[len(client.rtt_samples) // 2]
        assert median == pytest.approx(rtt, rel=0.3)

    def test_on_rtt_callback(self, sim, pair):
        SinkApp(pair.server, 7000)
        client = BacklogClient(pair.client, Endpoint("server", 7000))
        seen = []
        client.on_rtt = lambda now, rtt: seen.append((now, rtt))
        sim.run_until(50 * MILLISECONDS)
        assert seen == client.rtt_samples[len(client.rtt_samples) - len(seen):]

    def test_stop_closes_flow(self, sim, pair):
        SinkApp(pair.server, 7000)
        client = BacklogClient(pair.client, Endpoint("server", 7000))
        sim.run_until(10 * MILLISECONDS)
        client.stop()
        sim.run_until(400 * MILLISECONDS)
        assert pair.client.connection_count == 0

    def test_chunk_size_validation(self, sim, pair):
        SinkApp(pair.server, 7000)
        with pytest.raises(ValueError):
            BacklogClient(pair.client, Endpoint("server", 7000), chunk_bytes=0)
