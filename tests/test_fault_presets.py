"""Preset library, the textual fault parser, and the CLI --fault flag."""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    DelayFault,
    FaultSchedule,
    JitterFault,
    LossFault,
    PRESETS,
    ServerSlowdownFault,
    ThrottleFault,
    parse_faults,
    preset,
)
from repro.units import MILLISECONDS, SECONDS


class TestPresets:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_presets_validate_at_any_duration(self, name):
        for duration in (1 * SECONDS, 10 * SECONDS):
            faults = preset(name, duration)
            assert faults
            FaultSchedule(faults).windows(duration)  # no raise

    def test_fig3_preset_is_the_paper_stimulus(self):
        (fault,) = preset("fig3", 4 * SECONDS)
        assert isinstance(fault, DelayFault)
        assert fault.start == 2 * SECONDS
        assert fault.extra == 1 * MILLISECONDS
        assert fault.node == "server0"
        assert fault.duration is None

    def test_flapping_server_recurs(self):
        (fault,) = preset("flapping_server", 6 * SECONDS)
        assert isinstance(fault, ServerSlowdownFault)
        assert fault.period is not None
        assert fault.duration < fault.period
        windows = FaultSchedule([fault]).windows(6 * SECONDS)
        assert len(windows) > 2

    def test_slow_ramp_compounds(self):
        faults = preset("slow_ramp", 8 * SECONDS)
        assert len(faults) == 4
        assert all(isinstance(f, ServerSlowdownFault) for f in faults)

    def test_correlated_burst_hits_all_paths(self):
        faults = preset("correlated_burst", 8 * SECONDS)
        kinds = {type(f) for f in faults}
        assert kinds == {DelayFault, JitterFault, LossFault}
        assert all(f.node == "*" for f in faults)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault preset"):
            preset("nope", 1 * SECONDS)


class TestParser:
    def test_preset_name_expands(self):
        faults = parse_faults("lossy_path", 4 * SECONDS)
        assert len(faults) == 1 and isinstance(faults[0], LossFault)

    def test_inline_delay_spec(self):
        (fault,) = parse_faults(
            "delay:node=server0,start=1s,dur=500ms,extra=1ms", 4 * SECONDS
        )
        assert isinstance(fault, DelayFault)
        assert fault.start == 1 * SECONDS
        assert fault.duration == 500 * MILLISECONDS
        assert fault.extra == 1 * MILLISECONDS

    def test_inline_throttle_bandwidth_suffix(self):
        (fault,) = parse_faults("throttle:node=server1,start=1s,bw=200m", 4 * SECONDS)
        assert isinstance(fault, ThrottleFault)
        assert fault.bandwidth_bps == 200_000_000

    def test_bare_number_is_seconds(self):
        (fault,) = parse_faults("delay:node=server0,start=1.5", 4 * SECONDS)
        assert fault.start == 1_500_000_000

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault"):
            parse_faults("meteor:node=server0", 4 * SECONDS)

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown key"):
            parse_faults("delay:node=server0,banana=1", 4 * SECONDS)

    def test_kind_without_params_rejected(self):
        with pytest.raises(ConfigError, match="no parameters"):
            parse_faults("delay", 4 * SECONDS)

    def test_parsed_fault_is_validated(self):
        with pytest.raises(ConfigError):
            parse_faults("loss:node=server0,prob=2.0", 4 * SECONDS)


class TestCli:
    def test_run_with_preset_fault_annotates_report(self, capsys):
        from repro.cli import main

        assert main(["--duration", "0.3", "run", "--fault", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "fault windows:" in out
        assert "delay" in out
        # fig3 at 0.3 s: onset at the midpoint, open-ended.
        assert "start=150.000ms until end of run" in out

    def test_run_with_inline_fault(self, capsys):
        from repro.cli import main

        code = main(
            [
                "--duration", "0.3",
                "run",
                "--fault", "delay:node=server0,start=100ms,dur=100ms,extra=1ms",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "start=100.000ms duration=100.000ms" in out
        assert "packet drops: queue=" in out

    def test_bad_fault_spec_raises_config_error(self):
        from repro.cli import main

        with pytest.raises(ConfigError):
            main(["--duration", "0.3", "run", "--fault", "nope"])
