"""Host demux, listeners, port allocation."""

import pytest

from repro.errors import TransportError
from repro.net.addr import Endpoint
from repro.net.network import Network
from repro.transport.endpoint import Host
from repro.units import MICROSECONDS, MILLISECONDS, SECONDS

from tests.conftest import make_echo_server


class TestListeners:
    def test_duplicate_listen_rejected(self, pair):
        pair.server.listen(7000, lambda c: None)
        with pytest.raises(TransportError):
            pair.server.listen(7000, lambda c: None)

    def test_syn_to_non_listening_port_ignored(self, sim, pair):
        conn = pair.client.connect(Endpoint("server", 9999))
        sim.run_until(50 * MILLISECONDS)
        assert not conn.established
        assert pair.server.connection_count == 0

    def test_listener_fires_per_connection(self, sim, pair):
        conns = []
        pair.server.listen(7000, lambda c: conns.append(c))
        pair.client.connect(pair.server_endpoint())
        pair.client.connect(pair.server_endpoint())
        sim.run_until(10 * MILLISECONDS)
        assert len(conns) == 2


class TestPortAllocation:
    def test_ephemeral_ports_unique(self, sim, pair):
        make_echo_server(pair)
        ports = {
            pair.client.connect(pair.server_endpoint()).local.port
            for _ in range(20)
        }
        assert len(ports) == 20
        assert all(p >= 49_152 for p in ports)

    def test_explicit_local_port(self, sim, pair):
        make_echo_server(pair)
        conn = pair.client.connect(pair.server_endpoint(), local_port=55_555)
        assert conn.local.port == 55_555

    def test_duplicate_explicit_port_rejected(self, sim, pair):
        make_echo_server(pair)
        pair.client.connect(pair.server_endpoint(), local_port=55_555)
        with pytest.raises(TransportError):
            pair.client.connect(pair.server_endpoint(), local_port=55_555)


class TestDemux:
    def test_connections_isolated(self, sim, pair):
        received = make_echo_server(pair)
        a = pair.client.connect(pair.server_endpoint())
        b = pair.client.connect(pair.server_endpoint())
        replies_a, replies_b = [], []
        a.on_message = lambda c, m: replies_a.append(m)
        b.on_message = lambda c, m: replies_b.append(m)
        a.send_message("from-a", 64)
        b.send_message("from-b", 64)
        sim.run_until(10 * MILLISECONDS)
        assert replies_a == [("echo", "from-a")]
        assert replies_b == [("echo", "from-b")]

    def test_connection_count_tracks_lifecycle(self, sim, pair):
        make_echo_server(pair)
        conn = pair.client.connect(pair.server_endpoint())
        sim.run_until(5 * MILLISECONDS)
        assert pair.client.connection_count == 1
        conn.close()
        sim.run_until(20 * MILLISECONDS)
        assert pair.client.connection_count == 0

    def test_stray_packet_after_teardown_ignored(self, sim, pair):
        # Close, then deliver a crafted stale packet: no crash, no state.
        make_echo_server(pair)
        conn = pair.client.connect(pair.server_endpoint())
        sim.run_until(5 * MILLISECONDS)
        conn.close()
        sim.run_until(20 * MILLISECONDS)
        from repro.net.packet import Packet, TcpFlags

        stale = Packet(
            src=conn.remote, dst=conn.local, flags=TcpFlags.ACK, seq=1, ack=1
        )
        pair.client.on_packet(stale)  # must not raise
        assert pair.client.connection_count == 0


class TestVipAlias:
    def test_server_accepts_vip_addressed_connection(self, sim):
        """DSR shape: server owns the VIP; LB-less shortcut version."""
        network = Network(sim)
        client = Host(network, "client")
        server = Host(network, "server")
        network.add_alias("vip", "server")
        network.connect_bidirectional("client", "server", prop_delay=1000)
        # Client routes the VIP toward the server pipe.
        network.add_route("client", "vip", "server")

        received = []

        def on_connection(conn):
            conn.on_message = lambda c, m: received.append(m)

        server.listen(7000, on_connection)
        conn = client.connect(Endpoint("vip", 7000))
        conn.send_message("hello-vip", 64)
        sim.run_until(10 * MILLISECONDS)
        assert received == ["hello-vip"]
        # The server-side connection is keyed on the VIP endpoint.
        assert conn.established
