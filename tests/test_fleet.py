"""The fleet plane: lifecycle legality, autoscaler mechanics, config."""

import pytest

from repro.errors import ConfigError, FleetError
from repro.fleet import (
    AutoscalingGroup,
    BackendState,
    FleetConfig,
    FleetLifecycle,
    ScalingDecision,
    ScheduledAction,
    StepPolicy,
    TargetTrackingPolicy,
)
from repro.harness.config import ScenarioConfig
from repro.lb.backend import Backend, BackendPool
from repro.lb.conntrack import ConnTrack
from repro.net.addr import FlowKey
from repro.sim import Simulator
from repro.units import MILLISECONDS

MS = MILLISECONDS


def fast_config(n_total, **overrides):
    """A FleetConfig with short timers so tests run in a few sim ms."""
    defaults = dict(
        enabled=True,
        max_backends=n_total,
        min_in_service=1,
        evaluate_interval=10 * MS,
        provision_delay=10 * MS,
        warmup_duration=40 * MS,
        warmup_steps=4,
        warmup_initial_weight=0.25,
        scale_out_cooldown=0,
        scale_in_cooldown=0,
        drain_poll=5 * MS,
        drain_timeout=50 * MS,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


def make_group(n_initial=2, n_total=6, **overrides):
    sim = Simulator()
    names = ["server%d" % i for i in range(n_total)]
    pool = BackendPool([Backend(n) for n in names[:n_initial]])
    conntrack = ConnTrack()
    group = AutoscalingGroup(
        sim, pool, conntrack, fast_config(n_total, **overrides), names
    )
    return sim, pool, conntrack, group


class TestLifecycle:
    def test_happy_path_and_counts(self):
        lc = FleetLifecycle()
        lc.transition(0, "a", BackendState.PROVISIONING)
        lc.transition(1, "a", BackendState.WARMING)
        lc.transition(2, "a", BackendState.IN_SERVICE)
        lc.transition(3, "a", BackendState.DRAINING)
        lc.transition(4, "a", BackendState.TERMINATED)
        # Name reuse re-enters at PROVISIONING.
        lc.transition(5, "a", BackendState.PROVISIONING)
        assert lc.state("a") is BackendState.PROVISIONING
        assert lc.transition_counts() == {
            "new->provisioning": 1,
            "provisioning->warming": 1,
            "warming->in_service": 1,
            "in_service->draining": 1,
            "draining->terminated": 1,
            "terminated->provisioning": 1,
        }

    def test_seed_and_cancel_and_early_drain_edges(self):
        lc = FleetLifecycle()
        # Seeding the initial pool jumps straight to IN_SERVICE.
        lc.transition(0, "seed", BackendState.IN_SERVICE)
        # A not-yet-booted instance can be cancelled outright.
        lc.transition(0, "a", BackendState.PROVISIONING)
        lc.transition(1, "a", BackendState.TERMINATED)
        # A warming backend can be drained before graduating.
        lc.transition(0, "b", BackendState.PROVISIONING)
        lc.transition(1, "b", BackendState.WARMING)
        lc.transition(2, "b", BackendState.DRAINING)

    @pytest.mark.parametrize(
        "path,bad",
        [
            ((), BackendState.WARMING),  # new name can't skip provisioning
            ((), BackendState.DRAINING),
            ((BackendState.PROVISIONING,), BackendState.IN_SERVICE),
            (
                (BackendState.PROVISIONING, BackendState.WARMING),
                BackendState.PROVISIONING,
            ),
            (
                (
                    BackendState.PROVISIONING,
                    BackendState.WARMING,
                    BackendState.IN_SERVICE,
                ),
                BackendState.WARMING,  # no un-draining shortcuts
            ),
        ],
    )
    def test_illegal_edges_raise(self, path, bad):
        lc = FleetLifecycle()
        for step in path:
            lc.transition(0, "x", step)
        with pytest.raises(FleetError):
            lc.transition(1, "x", bad)

    def test_capacity_excludes_draining(self):
        lc = FleetLifecycle()
        lc.transition(0, "a", BackendState.IN_SERVICE)
        lc.transition(0, "b", BackendState.PROVISIONING)
        lc.transition(0, "c", BackendState.IN_SERVICE)
        lc.transition(1, "c", BackendState.DRAINING)
        assert lc.capacity() == 2
        assert lc.in_state(BackendState.DRAINING) == ["c"]

    def test_listeners_see_every_event(self):
        lc = FleetLifecycle()
        seen = []
        lc.on_transition(lambda e: seen.append((e.backend, e.to_state)))
        lc.transition(0, "a", BackendState.PROVISIONING)
        lc.transition(1, "a", BackendState.WARMING)
        assert seen == [
            ("a", BackendState.PROVISIONING),
            ("a", BackendState.WARMING),
        ]


class TestFleetConfig:
    def test_disabled_config_skips_validation(self):
        FleetConfig(max_backends=0).validate()  # no-op when disabled

    @pytest.mark.parametrize(
        "overrides",
        [
            {"max_backends": 0},
            {"min_in_service": 0},
            {"min_in_service": 9, "max_backends": 8},
            {"evaluate_interval": 0},
            {"provision_delay": -1},
            {"warmup_initial_weight": 0.0},
            {"warmup_initial_weight": 1.5},
            {"warmup_steps": 0},
            {"scale_out_cooldown": -1},
            {"target_tracking": TargetTrackingPolicy(target=0)},
            {"target_tracking": TargetTrackingPolicy(band=1.0)},
            {"steps": [StepPolicy()]},  # needs a bound
            {"steps": [StepPolicy(upper=1.0, lower=2.0)]},
            {"schedule": [ScheduledAction(at=-1, desired=2)]},
            {"schedule": [ScheduledAction(at=0, desired=0)]},
        ],
    )
    def test_bad_values_raise(self, overrides):
        with pytest.raises(ConfigError):
            FleetConfig(enabled=True, **overrides).validate()

    def test_scenario_config_guards(self):
        # The Maglev table must out-size the provisioned universe.
        config = ScenarioConfig(n_servers=2)
        config.fleet = FleetConfig(enabled=True, max_backends=8)
        config.maglev_size = 7
        with pytest.raises(ConfigError):
            config.validate()
        # max_backends must cover the initial pool.
        config = ScenarioConfig(n_servers=9)
        config.fleet = FleetConfig(enabled=True, max_backends=8)
        with pytest.raises(ConfigError):
            config.validate()

    def test_group_requires_enabled_config(self):
        sim = Simulator()
        pool = BackendPool([Backend("server0")])
        with pytest.raises(FleetError):
            AutoscalingGroup(
                sim, pool, ConnTrack(), FleetConfig(), ["server0"]
            )


class TestScaleOut:
    def test_scheduled_ramp_reaches_in_service(self):
        sim, pool, _ct, group = make_group(
            n_initial=2, n_total=6, schedule=[ScheduledAction(at=15 * MS, desired=5)]
        )
        group.start()
        sim.run_until(200 * MS)
        assert group.capacity() == 5
        assert group.lifecycle.count(BackendState.IN_SERVICE) == 5
        assert len(pool) == 5
        # Everyone graduated to full weight.
        assert all(w == 1.0 for w in pool.weights().values())
        [decision] = group.decisions
        assert (decision.policy, decision.direction) == ("scheduled", "out")
        assert (decision.before, decision.after) == (2, 5)

    def test_warmup_ramp_starts_below_full_weight(self):
        sim, pool, _ct, group = make_group(
            n_initial=1, n_total=4, schedule=[ScheduledAction(at=5 * MS, desired=4)]
        )
        group.start()
        # Past provisioning, into the first ramp steps.
        sim.run_until(31 * MS)
        warming = group.lifecycle.in_state(BackendState.WARMING)
        assert warming
        weights = pool.weights()
        assert all(0 < weights[name] < 1.0 for name in warming)

    def test_target_tracking_scales_out_on_hot_metric(self):
        sim, _pool, ct, group = make_group(
            n_initial=2,
            n_total=8,
            target_tracking=TargetTrackingPolicy(
                metric="flows_per_backend", target=1.0, band=0.2
            ),
        )
        # Pin 6 flows on the 2 serving backends: metric = 3.0 -> size 6.
        for i in range(6):
            ct.insert(
                FlowKey("c", 1000 + i, "vip", 1),
                "server%d" % (i % 2),
                now=0,
            )
        group.start()
        sim.run_until(100 * MS)
        assert group.capacity() == 6
        assert group.decisions[0].policy == "target-tracking"
        assert group.decisions[0].metric == 3.0

    def test_step_policy_and_custom_metric_source(self):
        sim, _pool, _ct, group = make_group(
            n_initial=2,
            n_total=6,
            steps=[StepPolicy(metric="queue_depth", upper=10.0, step=2)],
        )
        group.metric_sources["queue_depth"] = lambda: 12.0
        group.start()
        sim.run_until(11 * MS)
        assert group.capacity() == 4
        assert group.decisions[0].policy == "step"

    def test_unknown_metric_raises(self):
        _sim, _pool, _ct, group = make_group()
        with pytest.raises(FleetError):
            group._metric("no_such_metric")

    def test_scale_out_cooldown_spaces_decisions(self):
        sim, _pool, _ct, group = make_group(
            n_initial=1,
            n_total=8,
            scale_out_cooldown=100 * MS,
            steps=[StepPolicy(metric="hot", upper=1.0, step=1)],
        )
        group.metric_sources["hot"] = lambda: 5.0
        group.start()
        sim.run_until(95 * MS)
        # Ticks at 10..90 ms, but only t=10 and t=... wait out the 100ms
        # cooldown — a single decision fits in the window.
        assert len(group.decisions) == 1


class TestScaleIn:
    def test_drain_clean_when_no_flows(self):
        sim, pool, _ct, group = make_group(
            n_initial=4,
            n_total=4,
            schedule=[ScheduledAction(at=15 * MS, desired=2)],
        )
        group.start()
        sim.run_until(100 * MS)
        assert group.capacity() == 2
        assert len(pool) == 2
        assert group.lifecycle.count(BackendState.TERMINATED) == 2
        # Clean drain: no pinned flows, terminated on the first poll.
        events = [
            e
            for e in group.lifecycle.events
            if e.to_state is BackendState.TERMINATED
        ]
        assert all("clean" in e.reason for e in events)

    def test_drain_waits_for_pinned_flows_until_timeout(self):
        sim, pool, ct, group = make_group(
            n_initial=3,
            n_total=3,
            drain_timeout=60 * MS,
            schedule=[ScheduledAction(at=15 * MS, desired=2)],
        )
        # The newest launch is the victim; launch order is seed order.
        victim = "server2"
        flow = FlowKey("c", 1000, "vip", 1)
        ct.insert(flow, victim, now=0)
        group.start()
        sim.run_until(40 * MS)
        # Out of the pool (no new flows) but still draining its flow.
        assert victim not in pool
        assert group.lifecycle.state(victim) is BackendState.DRAINING
        sim.run_until(200 * MS)
        assert group.lifecycle.state(victim) is BackendState.TERMINATED
        [event] = [
            e
            for e in group.lifecycle.events
            if e.backend == victim and e.to_state is BackendState.TERMINATED
        ]
        assert "timeout" in event.reason

    def test_min_in_service_floor_holds(self):
        sim, pool, _ct, group = make_group(
            n_initial=3,
            n_total=3,
            min_in_service=2,
            schedule=[ScheduledAction(at=15 * MS, desired=1)],
        )
        group.start()
        sim.run_until(100 * MS)
        assert len(pool) == 2
        assert group.lifecycle.count(BackendState.IN_SERVICE) == 2

    def test_provisioning_victims_cancelled_without_drain(self):
        sim, pool, _ct, group = make_group(
            n_initial=1,
            n_total=5,
            provision_delay=100 * MS,  # long boot: still PROVISIONING
            schedule=[
                ScheduledAction(at=15 * MS, desired=5),
                ScheduledAction(at=35 * MS, desired=1),
            ],
        )
        group.start()
        sim.run_until(60 * MS)
        # All four launches cancelled before boot; none reached the pool.
        assert group.capacity() == 1
        assert len(pool) == 1
        counts = group.lifecycle.transition_counts()
        assert counts["provisioning->terminated"] == 4
        assert "provisioning->warming" not in counts
        # The voided boot timer must not resurrect them.
        sim.run_until(200 * MS)
        assert len(pool) == 1

    def test_terminated_names_are_reused(self):
        sim, pool, _ct, group = make_group(
            n_initial=2,
            n_total=3,
            schedule=[
                ScheduledAction(at=15 * MS, desired=3),
                ScheduledAction(at=105 * MS, desired=2),
                ScheduledAction(at=205 * MS, desired=3),
            ],
        )
        group.start()
        sim.run_until(300 * MS)
        assert group.capacity() == 3
        counts = group.lifecycle.transition_counts()
        assert counts["terminated->provisioning"] == 1
        assert counts["new->provisioning"] == 1


class TestDecisionTelemetry:
    def test_oscillation_counting(self):
        _sim, _pool, _ct, group = make_group(oscillation_window=100 * MS)

        def decision(t, direction):
            return ScalingDecision(
                time=t,
                policy="step",
                direction=direction,
                reason="",
                metric=None,
                before=2,
                after=3,
            )

        group.decisions = [
            decision(0, "out"),
            decision(50 * MS, "in"),     # flip inside window: oscillation
            decision(80 * MS, "out"),    # flip inside window: oscillation
            decision(300 * MS, "in"),    # flip, but outside the window
            decision(350 * MS, "in"),    # same direction: not a flip
        ]
        assert group.oscillations() == 2

    def test_time_to_stable(self):
        _sim, _pool, _ct, group = make_group()
        assert group.time_to_stable() is None
        group.decisions = [
            ScalingDecision(
                time=t,
                policy="step",
                direction="out",
                reason="",
                metric=None,
                before=1,
                after=2,
            )
            for t in (10 * MS, 70 * MS)
        ]
        assert group.time_to_stable() == 70 * MS
        assert group.time_to_stable(since=80 * MS) is None

    def test_capacity_series_tracks_decisions(self):
        sim, _pool, _ct, group = make_group(
            n_initial=2, n_total=6, schedule=[ScheduledAction(at=15 * MS, desired=6)]
        )
        group.start()
        sim.run_until(100 * MS)
        values = list(group.capacity_series.values)
        assert values[0] == 2.0  # initial pool
        assert values[-1] == 6.0
