"""Maglev table construction, weighting, consistency."""

import pytest

from repro.errors import BalancerError
from repro.lb.maglev import MaglevTable, is_prime, next_prime


class TestPrimes:
    def test_is_prime(self):
        assert is_prime(2) and is_prime(3) and is_prime(251) and is_prime(65_537)
        assert not is_prime(1) and not is_prime(4) and not is_prime(65_536)

    def test_next_prime(self):
        assert next_prime(250) == 251
        assert next_prime(251) == 251
        assert next_prime(1000) == 1009


class TestConstruction:
    def test_size_must_be_prime(self):
        with pytest.raises(BalancerError):
            MaglevTable(100)

    def test_every_slot_filled(self):
        table = MaglevTable(251)
        table.build({"a": 1.0, "b": 1.0, "c": 1.0})
        assert sum(table.slot_counts().values()) == 251

    def test_empty_build_rejected(self):
        with pytest.raises(BalancerError):
            MaglevTable(251).build({})

    def test_zero_weight_backends_excluded(self):
        table = MaglevTable(251)
        table.build({"a": 1.0, "b": 0.0})
        assert table.backends == ["a"]

    def test_lookup_before_build_rejected(self):
        with pytest.raises(BalancerError):
            MaglevTable(251).lookup(5)

    def test_more_backends_than_slots_rejected(self):
        table = MaglevTable(5)
        with pytest.raises(BalancerError):
            table.build({"b%d" % i: 1.0 for i in range(10)})

    def test_builds_counter(self):
        table = MaglevTable(251)
        table.build({"a": 1.0})
        table.build({"a": 1.0, "b": 1.0})
        assert table.builds == 2


class TestBalance:
    def test_equal_weights_near_equal_slots(self):
        table = MaglevTable(1021)
        table.build({"a": 1.0, "b": 1.0, "c": 1.0})
        counts = table.slot_counts()
        for count in counts.values():
            assert count == pytest.approx(1021 / 3, rel=0.02)

    def test_weighted_slots_proportional(self):
        table = MaglevTable(1021)
        table.build({"a": 3.0, "b": 1.0})
        counts = table.slot_counts()
        assert counts["a"] == pytest.approx(3 * counts["b"], rel=0.02)

    def test_tiny_weight_keeps_at_least_one_slot(self):
        table = MaglevTable(251)
        table.build({"a": 1.0, "b": 1e-9})
        assert table.slot_counts()["b"] >= 1

    def test_lookups_match_slot_distribution(self):
        table = MaglevTable(251)
        table.build({"a": 1.0, "b": 1.0})
        hits = {"a": 0, "b": 0}
        for flow in range(5000):
            hits[table.lookup_flow("flow-%d" % flow)] += 1
        assert hits["a"] == pytest.approx(2500, rel=0.1)


class TestConsistency:
    def test_deterministic_across_instances(self):
        a = MaglevTable(251)
        b = MaglevTable(251)
        weights = {"x": 1.0, "y": 2.0}
        a.build(weights)
        b.build(weights)
        assert a.slot_counts() == b.slot_counts()
        for flow in range(100):
            key = "f%d" % flow
            assert a.lookup_flow(key) == b.lookup_flow(key)

    def test_insertion_order_irrelevant(self):
        a = MaglevTable(251)
        b = MaglevTable(251)
        a.build({"x": 1.0, "y": 1.0})
        b.build({"y": 1.0, "x": 1.0})
        assert a.disruption(b) == 0.0

    def test_removing_backend_disrupts_only_its_slots(self):
        before = MaglevTable(1021)
        before.build({"a": 1.0, "b": 1.0, "c": 1.0})
        after = MaglevTable(1021)
        after.build({"a": 1.0, "b": 1.0})
        # Ideal minimal disruption = c's share = 1/3; Maglev guarantees
        # close to that.
        assert before.disruption(after) == pytest.approx(1 / 3, abs=0.08)

    def test_small_weight_change_small_disruption(self):
        before = MaglevTable(1021)
        before.build({"a": 1.0, "b": 1.0})
        after = MaglevTable(1021)
        after.build({"a": 0.9, "b": 1.1})
        # Only ~5% of slots should move.
        assert before.disruption(after) < 0.15

    def test_disruption_size_mismatch_rejected(self):
        a = MaglevTable(251)
        b = MaglevTable(257)
        a.build({"x": 1.0})
        b.build({"x": 1.0})
        with pytest.raises(BalancerError):
            a.disruption(b)
