"""Cross-module integration invariants.

These test the *system*, not one module: the DSR visibility constraint,
connection affinity under weight churn, recovery after transient faults,
and conservation laws between client, LB, and server counters.
"""

import pytest

from repro.app.protocol import Op
from repro.faults import DelayFault
from repro.harness.config import (
    PolicyName,
    ScenarioConfig,
)
from repro.harness.runner import run_scenario
from repro.harness.scenario import build_scenario
from repro.net.packet import TcpFlags
from repro.units import MICROSECONDS, MILLISECONDS, SECONDS


def small_config(**kwargs):
    defaults = dict(seed=2, duration=300 * MILLISECONDS, n_servers=2)
    defaults.update(kwargs)
    return ScenarioConfig(**defaults)


class TestDsrInvariant:
    def test_lb_never_sees_server_to_client_traffic(self):
        """The defining constraint of §2.4: responses bypass the LB."""
        scenario = build_scenario(small_config())
        seen_sources = set()
        # The tap's packet argument is a slab handle in slab mode; the
        # flow key carries the source host either way.
        scenario.lb.add_tap(
            lambda now, flow, backend, pkt: seen_sources.add(flow.src_host)
        )
        for client in scenario.clients:
            client.start()
        scenario.sim.run_until(100 * MILLISECONDS)
        assert seen_sources  # traffic flowed
        assert all(host.startswith("client") for host in seen_sources)

    def test_responses_travel_direct_pipes(self):
        scenario = build_scenario(small_config())
        for client in scenario.clients:
            client.start()
        scenario.sim.run_until(100 * MILLISECONDS)
        direct = scenario.network.pipe("server0", "client0")
        assert direct.stats.packets_delivered > 0

    def test_responses_sourced_from_vip(self):
        """Clients must see responses from the VIP, or TCP would break."""
        scenario = build_scenario(small_config())
        bad = []
        scenario.network.add_tap(
            lambda pipe, pkt: bad.append(pkt)
            if pipe.startswith("server") and pkt.src.host != "vip"
            else None
        )
        for client in scenario.clients:
            client.start()
        scenario.sim.run_until(50 * MILLISECONDS)
        assert bad == []


class TestAffinity:
    def test_no_connection_breaks_during_weight_churn(self):
        """§2.5: rebuilds must not re-route established connections."""
        config = small_config(policy=PolicyName.FEEDBACK, duration=500 * MILLISECONDS)
        config.faults = [
            DelayFault(
                start=100 * MILLISECONDS, extra=1 * MILLISECONDS, node="server0"
            )
        ]
        scenario = build_scenario(config)
        flow_backends = {}
        violations = []

        def check(now, flow, backend, pkt):
            if flow in flow_backends and flow_backends[flow] != backend:
                violations.append((flow, flow_backends[flow], backend))
            flow_backends[flow] = backend

        scenario.lb.add_tap(check)
        for client in scenario.clients:
            client.start()
        scenario.sim.run_until(config.duration)
        assert scenario.feedback.shift_events()  # weights did change
        assert violations == []

    def test_every_request_answered_exactly_once(self):
        result = run_scenario(small_config())
        ids = [r.request_id for r in result.records]
        assert len(ids) == len(set(ids))


class TestConservation:
    def test_served_counts_match_client_view(self):
        result = run_scenario(small_config())
        servers = result.scenario.servers
        total_responses = sum(s.stats.responses for s in servers)
        # Client may have in-flight stragglers at cutoff; responses sent
        # must be >= responses received, and close.
        assert total_responses >= len(result.records)
        assert total_responses - len(result.records) < 50

    def test_store_state_consistent_with_ops(self):
        result = run_scenario(small_config(n_servers=1))
        server = result.scenario.servers[0]
        sets = sum(1 for r in result.records if r.op is Op.SET)
        assert server.store.stats.sets >= sets

    def test_lb_forwarded_everything_it_accepted(self):
        result = run_scenario(small_config())
        stats = result.scenario.lb.stats
        assert stats.packets_forwarded == stats.packets_in


class TestTransientFault:
    def test_feedback_returns_traffic_after_fault_clears(self):
        """Inject, then clear: the weight floor keeps probe traffic on
        the slow server so the estimator can observe recovery."""
        duration = 1200 * MILLISECONDS
        config = small_config(
            policy=PolicyName.FEEDBACK,
            duration=duration,
            faults=[
                DelayFault(
                    start=duration // 4,
                    duration=duration // 4,
                    extra=2 * MILLISECONDS,
                    node="server0",
                )
            ],
        )
        result = run_scenario(config)
        # Late in the run (fault long gone) server0 serves again.
        late = [
            r
            for r in result.records
            if r.completed_at > duration * 3 // 4
        ]
        share = sum(1 for r in late if r.server == "server0") / len(late)
        assert share > 0.2

    def test_oracle_also_recovers(self):
        duration = 1200 * MILLISECONDS
        config = small_config(
            policy=PolicyName.ORACLE,
            duration=duration,
            faults=[
                DelayFault(
                    start=duration // 4,
                    duration=duration // 4,
                    extra=2 * MILLISECONDS,
                    node="server0",
                )
            ],
        )
        result = run_scenario(config)
        late = [r for r in result.records if r.completed_at > duration * 3 // 4]
        share = sum(1 for r in late if r.server == "server0") / len(late)
        assert share > 0.2


class TestScale:
    @pytest.mark.slow
    def test_many_clients_many_servers(self):
        config = ScenarioConfig(
            seed=8,
            duration=200 * MILLISECONDS,
            n_clients=4,
            n_servers=5,
            policy=PolicyName.FEEDBACK,
        )
        result = run_scenario(config)
        assert result.throughput_rps() > 1000
        counts = result.per_server_counts()
        assert len(counts) == 5  # every server served something
