"""Alternative control strategies (open question #4)."""

import pytest

from repro.controllers import (
    AimdConfig,
    AimdController,
    ProportionalConfig,
    ProportionalController,
)
from repro.core.estimator import BackendLatencyEstimator, EstimatorConfig
from repro.errors import ConfigError
from repro.lb.backend import Backend, BackendPool
from repro.units import MILLISECONDS


def make_pool(n=2):
    return BackendPool([Backend("s%d" % i) for i in range(n)])


def make_estimator():
    return BackendLatencyEstimator(EstimatorConfig(min_samples=1))


class TestProportionalController:
    def test_weights_inverse_to_latency(self):
        pool, estimator = make_pool(), make_estimator()
        controller = ProportionalController(
            pool, estimator, ProportionalConfig(min_interval=0)
        )
        estimator.observe("s0", 0, 300)
        estimator.observe("s1", 0, 100)
        update = controller.maybe_update(0)
        assert update is not None
        weights = pool.weights()
        # 1/300 : 1/100 = 1 : 3 over total 2.0.
        assert weights["s1"] == pytest.approx(3 * weights["s0"], rel=0.01)
        assert sum(weights.values()) == pytest.approx(2.0, rel=0.01)

    def test_power_sharpens_response(self):
        for power, expected_ratio in ((1.0, 2.0), (2.0, 4.0)):
            pool, estimator = make_pool(), make_estimator()
            controller = ProportionalController(
                pool, estimator, ProportionalConfig(power=power, min_interval=0)
            )
            estimator.observe("s0", 0, 200)
            estimator.observe("s1", 0, 100)
            controller.maybe_update(0)
            weights = pool.weights()
            assert weights["s1"] / weights["s0"] == pytest.approx(
                expected_ratio, rel=0.01
            )

    def test_requires_two_estimates(self):
        pool, estimator = make_pool(), make_estimator()
        controller = ProportionalController(pool, estimator)
        estimator.observe("s0", 0, 100)
        assert controller.maybe_update(0) is None

    def test_rate_limited(self):
        pool, estimator = make_pool(), make_estimator()
        controller = ProportionalController(
            pool, estimator, ProportionalConfig(min_interval=10 * MILLISECONDS)
        )
        estimator.observe("s0", 0, 300)
        estimator.observe("s1", 0, 100)
        assert controller.maybe_update(0) is not None
        assert controller.maybe_update(1 * MILLISECONDS) is None
        assert controller.maybe_update(11 * MILLISECONDS) is not None

    def test_floor_respected(self):
        pool, estimator = make_pool(), make_estimator()
        controller = ProportionalController(
            pool, estimator, ProportionalConfig(min_interval=0, weight_floor=0.1)
        )
        estimator.observe("s0", 0, 1_000_000)
        estimator.observe("s1", 0, 1)
        controller.maybe_update(0)
        assert pool.weights()["s0"] >= 0.1 * 2.0 - 1e-9

    def test_validation(self):
        with pytest.raises(ConfigError):
            ProportionalConfig(power=0).validate()
        with pytest.raises(ConfigError):
            ProportionalConfig(weight_floor=0.6).validate()


class TestAimdController:
    def test_slow_backend_decreased(self):
        pool, estimator = make_pool(), make_estimator()
        controller = AimdController(
            pool, estimator, AimdConfig(min_interval=0)
        )
        estimator.observe("s0", 0, 1000)  # > 1.3x best
        estimator.observe("s1", 0, 100)
        controller.maybe_update(0)
        weights = pool.weights()
        assert weights["s0"] < weights["s1"]
        assert sum(weights.values()) == pytest.approx(2.0)

    def test_converges_to_floor_under_persistent_slowness(self):
        pool, estimator = make_pool(), make_estimator()
        controller = AimdController(
            pool, estimator, AimdConfig(min_interval=0, weight_floor=0.05)
        )
        for step in range(1, 60):
            now = step * 10 * MILLISECONDS
            estimator.observe("s0", now, 1000)
            estimator.observe("s1", now, 100)
            controller.maybe_update(now)
        assert pool.weights()["s0"] == pytest.approx(0.05 * 2.0, rel=0.05)

    def test_recovers_additively_when_healthy(self):
        pool, estimator = make_pool(), make_estimator()
        controller = AimdController(pool, estimator, AimdConfig(min_interval=0))
        # Drive s0 down.
        for step in range(1, 20):
            now = step * 10 * MILLISECONDS
            estimator.observe("s0", now, 1000)
            estimator.observe("s1", now, 100)
            controller.maybe_update(now)
        low = pool.weights()["s0"]
        # Now equal latencies: s0 recovers.
        for step in range(20, 60):
            now = step * 10 * MILLISECONDS
            estimator.observe("s0", now, 100)
            estimator.observe("s1", now, 100)
            controller.maybe_update(now)
        assert pool.weights()["s0"] > low
        assert sum(pool.weights().values()) == pytest.approx(2.0)

    def test_no_update_without_estimates(self):
        pool, estimator = make_pool(), make_estimator()
        controller = AimdController(pool, estimator, AimdConfig(min_interval=0))
        assert controller.maybe_update(0) is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            AimdConfig(decrease=1.5).validate()
        with pytest.raises(ConfigError):
            AimdConfig(increase=0).validate()
        with pytest.raises(ConfigError):
            AimdConfig(threshold=0.5).validate()


class TestFeedbackIntegration:
    def test_strategy_selection_via_config(self, sim):
        from repro.core.feedback import FeedbackConfig, InbandFeedback
        from repro.lb.dataplane import LoadBalancer
        from repro.lb.policies import MaglevPolicy
        from repro.net.addr import Endpoint
        from repro.net.network import Network

        network = Network(sim)

        class Stub:
            name = "client"

            def on_packet(self, packet):
                pass

        network.add_node(Stub())
        pool = make_pool()
        lb = LoadBalancer(
            network, "lb", Endpoint("vip", 80), pool, MaglevPolicy(pool, 251)
        )
        feedback = InbandFeedback(lb, FeedbackConfig(strategy="proportional"))
        assert isinstance(feedback.controller, ProportionalController)

        lb2 = LoadBalancer(
            network, "lb2", Endpoint("vip2", 80), pool, MaglevPolicy(pool, 251)
        )
        feedback2 = InbandFeedback(lb2, FeedbackConfig(strategy="aimd"))
        assert isinstance(feedback2.controller, AimdController)

    def test_unknown_strategy_rejected(self, sim):
        from repro.core.feedback import FeedbackConfig, InbandFeedback
        from repro.errors import ConfigError
        from repro.lb.dataplane import LoadBalancer
        from repro.lb.policies import MaglevPolicy
        from repro.net.addr import Endpoint
        from repro.net.network import Network

        network = Network(sim)
        pool = make_pool()
        lb = LoadBalancer(
            network, "lb", Endpoint("vip", 80), pool, MaglevPolicy(pool, 251)
        )
        with pytest.raises(ConfigError):
            InbandFeedback(lb, FeedbackConfig(strategy="nonsense"))


class TestDeprecatedShim:
    """The old ``repro.core.strategies`` path warns but keeps working."""

    def test_old_import_path_warns_and_resolves(self):
        import repro.core.strategies as old

        with pytest.warns(DeprecationWarning):
            cls = old.AimdController
        assert cls is AimdController

    def test_renamed_private_helper_resolves(self):
        import repro.core.strategies as old

        from repro.controllers.base import renormalize_with_floor

        with pytest.warns(DeprecationWarning):
            fn = old._renormalize_with_floor
        assert fn is renormalize_with_floor

    def test_unknown_attribute_still_raises(self):
        import repro.core.strategies as old

        with pytest.raises(AttributeError):
            old.NoSuchStrategy
