"""Distribution summaries."""

import pytest

from repro.telemetry.summary import summarize


class TestSummarize:
    def test_uniform_ramp(self):
        summary = summarize(list(range(101)))
        assert summary.count == 101
        assert summary.mean == pytest.approx(50.0)
        assert summary.p50 == pytest.approx(50.0)
        assert summary.p95 == pytest.approx(95.0)
        assert summary.min == 0
        assert summary.max == 100

    def test_single_value(self):
        summary = summarize([7.0])
        assert summary.p50 == summary.p99 == summary.mean == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_percentiles_ordered(self):
        summary = summarize([1, 5, 2, 8, 3, 9, 4])
        assert (
            summary.min
            <= summary.p50
            <= summary.p90
            <= summary.p95
            <= summary.p99
            <= summary.max
        )

    def test_format_scales(self):
        summary = summarize([1_000_000.0])
        line = summary.format(scale=1e6, unit="ms")
        assert "mean=1.000ms" in line
        assert "n=1" in line
