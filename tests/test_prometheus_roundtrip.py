"""Registry-wide exposition round trip on a fully-armed scenario.

Every other metrics test checks a handful of hand-picked families.
This one arms *every* plane that registers instruments — obs,
resilience (ladder + breakers), fleet, and the campaign audit — then
renders the whole registry through the strict exposition parser and
asserts the parse reproduces the registry's own ``to_json()`` view:
same families, same types, same label sets, same values.  Any
instrument added later is covered automatically.
"""

import math

import pytest

from repro.campaign import CampaignContext, evaluate
from repro.campaign.audit import CampaignAudit
from repro.faults import DelayFault
from repro.fleet import FleetConfig, ScheduledAction
from repro.harness.config import PolicyName, ScenarioConfig
from repro.harness.runner import run_scenario
from repro.harness.scenario import build_scenario
from repro.obs import ObsConfig
from repro.obs.metrics import parse_prometheus_text
from repro.resilience import ResilienceConfig
from repro.units import MILLISECONDS

MS = MILLISECONDS


@pytest.fixture(scope="module")
def registry():
    """One run with every metric-registering plane armed."""
    config = ScenarioConfig(
        seed=7,
        duration=300 * MS,
        n_servers=2,
        maglev_size=1021,
        policy=PolicyName.FEEDBACK,
        obs=ObsConfig(enabled=True, tracing=False, profiling=False),
        resilience=ResilienceConfig(enabled=True, health_checks=True),
        fleet=FleetConfig(
            enabled=True,
            max_backends=4,
            min_in_service=2,
            schedule=[ScheduledAction(at=100 * MS, desired=4)],
        ),
        faults=[DelayFault(start=150 * MS, node="server0", extra=MS)],
    )
    scenario = build_scenario(config)
    audit = CampaignAudit(scenario)
    result = run_scenario(config, scenario=scenario)
    # The audit's invariant counters only move once something evaluates.
    evaluate(CampaignContext(result=result, audit=audit, recovery_bound=1))
    return scenario.obs.registry


@pytest.fixture(scope="module")
def parsed(registry):
    return parse_prometheus_text(registry.to_prometheus())


def scalar_samples(parsed, name, family=None):
    """Series of ``name`` keyed by label set (histogram suffixes live
    under their base family, so pass ``family`` for those)."""
    return {
        tuple(sorted(labels.items())): value
        for sample_name, labels, value in parsed[family or name]["samples"]
        if sample_name == name
    }


class TestCoverage:
    def test_every_armed_plane_registered_families(self, registry):
        names = {family.name for family in registry.families()}
        expected = {
            "repro_lb_packets_total",            # LB plane
            "repro_tlb_samples_total",           # feedback plane
            "repro_tlb_latency_ns",              # estimator histogram
            "repro_weight_shifts_total",         # controller
            "repro_mode_transitions_total",      # resilience ladder
            "repro_breaker_transitions_total",   # resilience breakers
            "repro_fleet_scaling_decisions_total",  # fleet autoscaler
            "repro_fleet_transitions_total",     # fleet lifecycle
            "repro_invariant_checks_total",      # campaign audit
            "repro_sim_events_processed",        # engine
        }
        missing = expected - names
        assert not missing, "armed planes failed to register: %s" % missing

    def test_parse_sees_every_family(self, registry, parsed):
        for family in registry.families():
            assert family.name in parsed, family.name


class TestTypeFidelity:
    def test_types_survive_the_round_trip(self, registry, parsed):
        for family in registry.families():
            assert parsed[family.name]["type"] == family.kind, family.name

    def test_help_text_survives(self, registry, parsed):
        for family in registry.families():
            assert parsed[family.name]["help"] is not None, family.name


class TestValueFidelity:
    def test_scalar_values_and_labels_match_to_json(self, registry, parsed):
        rendered = registry.to_json()
        for name, family in rendered.items():
            if family["type"] == "histogram":
                continue
            got = scalar_samples(parsed, name)
            expected = {
                tuple(sorted(sample["labels"].items())): sample["value"]
                for sample in family["samples"]
            }
            assert got == pytest.approx(expected), name

    def test_histograms_round_trip_count_sum_and_buckets(
        self, registry, parsed
    ):
        rendered = registry.to_json()
        checked = 0
        for name, family in rendered.items():
            if family["type"] != "histogram":
                continue
            for sample in family["samples"]:
                key = tuple(sorted(sample["labels"].items()))
                assert scalar_samples(parsed, name + "_count", name)[
                    key
                ] == sample["count"]
                assert scalar_samples(parsed, name + "_sum", name)[
                    key
                ] == pytest.approx(sample["sum"])
                # Exposition buckets are cumulative; json buckets are not.
                cumulative = 0
                buckets = {
                    labels["le"]: value
                    for _n, labels, value in parsed[name]["samples"]
                    if _n == name + "_bucket"
                    and tuple(
                        sorted(p for p in labels.items() if p[0] != "le")
                    ) == key
                }
                for bucket in sample["buckets"]:
                    cumulative += bucket["count"]
                    le = (
                        "+Inf"
                        if math.isinf(bucket["le"])
                        else None
                    )
                    if le is None:
                        matches = [
                            v
                            for k, v in buckets.items()
                            if k != "+Inf" and float(k) == bucket["le"]
                        ]
                        assert matches == [cumulative], (name, bucket["le"])
                    else:
                        assert buckets["+Inf"] >= cumulative
                assert buckets["+Inf"] == sample["count"]
            checked += 1
        assert checked > 0, "the armed scenario must register a histogram"

    def test_no_unaccounted_samples(self, registry, parsed):
        # The parser attributes every sample line to a registered family
        # and invents none: total parsed series == total rendered series.
        rendered = registry.to_json()
        expected = 0
        for name, family in rendered.items():
            for sample in family["samples"]:
                if family["type"] == "histogram":
                    # per-le buckets + +Inf + _sum + _count
                    expected += len(sample["buckets"]) + 3
                else:
                    expected += 1
        got = sum(len(f["samples"]) for f in parsed.values())
        assert got == expected

    def test_armed_run_actually_moved_the_needle(self, parsed):
        packets = scalar_samples(parsed, "repro_lb_packets_total")
        assert sum(packets.values()) > 0
        checks = scalar_samples(parsed, "repro_invariant_checks_total")
        assert sum(checks.values()) > 0
