"""Workload composition: keys, op mix, value sizes."""

import random
from collections import Counter

import pytest

from repro.app.protocol import Op
from repro.app.workload import KeyGenerator, OpMixer, ValueSizer, WorkloadModel


class TestKeyGenerator:
    def test_uniform_covers_space(self):
        gen = KeyGenerator(n_keys=10)
        rng = random.Random(1)
        keys = {gen.draw(rng) for _ in range(1000)}
        assert keys == {"key-%d" % i for i in range(10)}

    def test_zipf_skews_to_low_ranks(self):
        gen = KeyGenerator(n_keys=100, zipf_s=1.2)
        rng = random.Random(2)
        counts = Counter(gen.draw(rng) for _ in range(20000))
        assert counts["key-0"] > counts.get("key-50", 0) * 5

    def test_zipf_zero_is_uniform(self):
        gen = KeyGenerator(n_keys=5, zipf_s=0.0)
        rng = random.Random(3)
        counts = Counter(gen.draw(rng) for _ in range(10000))
        for count in counts.values():
            assert count == pytest.approx(2000, rel=0.2)

    def test_prefix(self):
        gen = KeyGenerator(n_keys=1, prefix="user")
        assert gen.draw(random.Random(0)) == "user-0"

    def test_validation(self):
        with pytest.raises(ValueError):
            KeyGenerator(n_keys=0)
        with pytest.raises(ValueError):
            KeyGenerator(n_keys=10, zipf_s=-1)

    def test_deterministic_given_seed(self):
        gen = KeyGenerator(n_keys=100, zipf_s=0.9)
        a = [gen.draw(random.Random(7)) for _ in range(10)]
        b = [gen.draw(random.Random(7)) for _ in range(10)]
        assert a == b


class TestOpMixer:
    def test_all_gets(self):
        mixer = OpMixer(get_ratio=1.0)
        rng = random.Random(1)
        assert all(mixer.draw(rng) is Op.GET for _ in range(100))

    def test_all_sets(self):
        mixer = OpMixer(get_ratio=0.0)
        rng = random.Random(1)
        assert all(mixer.draw(rng) is Op.SET for _ in range(100))

    def test_fifty_fifty(self):
        mixer = OpMixer(get_ratio=0.5)
        rng = random.Random(2)
        gets = sum(mixer.draw(rng) is Op.GET for _ in range(20000))
        assert gets == pytest.approx(10000, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            OpMixer(get_ratio=1.5)


class TestValueSizer:
    def test_fixed(self):
        sizer = ValueSizer(fixed=512)
        assert sizer.draw(random.Random(0)) == 512

    def test_ranged(self):
        sizer = ValueSizer(fixed=None, low=10, high=20)
        rng = random.Random(1)
        values = [sizer.draw(rng) for _ in range(200)]
        assert all(10 <= v <= 20 for v in values)
        assert len(set(values)) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ValueSizer(fixed=0)
        with pytest.raises(ValueError):
            ValueSizer(fixed=None, low=0, high=10)
        with pytest.raises(ValueError):
            ValueSizer(fixed=None, low=20, high=10)


class TestWorkloadModel:
    def test_set_requests_carry_values(self):
        model = WorkloadModel(ops=OpMixer(get_ratio=0.0), values=ValueSizer(fixed=777))
        request = model.make_request(random.Random(1))
        assert request.op is Op.SET
        assert request.value_size == 777

    def test_get_requests_carry_no_value(self):
        model = WorkloadModel(ops=OpMixer(get_ratio=1.0))
        request = model.make_request(random.Random(1))
        assert request.op is Op.GET
        assert request.value_size == 0

    def test_defaults_sane(self):
        model = WorkloadModel()
        request = model.make_request(random.Random(1))
        assert request.key.startswith("key-")
