"""Network fabric: nodes, routes, aliases, DSR shape."""

import pytest

from repro.errors import NetworkError
from repro.net.addr import Endpoint
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.trace import PacketTrace


class RecorderNode:
    """Minimal node that logs deliveries."""

    def __init__(self, name):
        self.name = name
        self.received = []

    def on_packet(self, packet):
        self.received.append(packet)


def make_packet(src, dst):
    return Packet(src=Endpoint(src, 1), dst=Endpoint(dst, 2))


@pytest.fixture
def abc(network):
    nodes = {name: RecorderNode(name) for name in "abc"}
    for node in nodes.values():
        network.add_node(node)
    network.connect("a", "b", prop_delay=100)
    network.connect("b", "c", prop_delay=100)
    return nodes


class TestTopology:
    def test_duplicate_node_rejected(self, network):
        network.add_node(RecorderNode("a"))
        with pytest.raises(NetworkError):
            network.add_node(RecorderNode("a"))

    def test_unknown_node_lookup_rejected(self, network):
        with pytest.raises(NetworkError):
            network.get_node("ghost")

    def test_connect_requires_registered_nodes(self, network):
        network.add_node(RecorderNode("a"))
        with pytest.raises(NetworkError):
            network.connect("a", "ghost", prop_delay=0)
        with pytest.raises(NetworkError):
            network.connect("ghost", "a", prop_delay=0)

    def test_duplicate_pipe_rejected(self, network, abc):
        with pytest.raises(NetworkError):
            network.connect("a", "b", prop_delay=0)

    def test_pipe_lookup(self, network, abc):
        assert network.pipe("a", "b").name == "a->b"
        with pytest.raises(NetworkError):
            network.pipe("b", "a")

    def test_bidirectional_helper(self, network):
        network.add_node(RecorderNode("x"))
        network.add_node(RecorderNode("y"))
        fwd, back = network.connect_bidirectional("x", "y", prop_delay=10)
        assert fwd.name == "x->y"
        assert back.name == "y->x"


class TestRouting:
    def test_direct_delivery_via_pipe_name(self, sim, network, abc):
        network.send_from("a", make_packet("a", "b"))
        sim.run()
        assert len(abc["b"].received) == 1

    def test_explicit_route_next_hop(self, sim, network, abc):
        network.add_route("a", "c", "b")
        network.add_route("b", "c", "c")
        pkt = make_packet("a", "c")
        network.send_from("a", pkt)
        sim.run()
        # Delivered to b (next hop); b would forward in a real node.
        assert abc["b"].received == [pkt]

    def test_default_route(self, sim, network, abc):
        network.set_default_route("a", "b")
        network.send_from("a", make_packet("a", "unknown-host-behind-b"))
        sim.run()
        assert len(abc["b"].received) == 1

    def test_no_route_raises(self, network, abc):
        with pytest.raises(NetworkError):
            network.send_from("a", make_packet("a", "c"))  # no a->c pipe/route

    def test_route_to_unknown_node_rejected(self, network):
        with pytest.raises(NetworkError):
            network.add_route("ghost", "x", "y")

    def test_send_via_ignores_routes(self, sim, network, abc):
        pkt = make_packet("a", "c")  # destination c, but hop forced to b
        network.send_via("a", "b", pkt)
        sim.run()
        assert abc["b"].received == [pkt]

    def test_send_via_missing_pipe_rejected(self, network, abc):
        with pytest.raises(NetworkError):
            network.send_via("a", "c", make_packet("a", "c"))


class TestAliases:
    def test_alias_resolves_for_routing(self, sim, network, abc):
        network.add_alias("vip", "b")
        network.add_route("a", "b", "b")
        network.send_from("a", make_packet("a", "vip"))
        sim.run()
        assert len(abc["b"].received) == 1

    def test_alias_to_unknown_node_rejected(self, network):
        with pytest.raises(NetworkError):
            network.add_alias("vip", "ghost")


class TestTaps:
    def test_tap_sees_transmissions(self, sim, network, abc):
        seen = []
        network.add_tap(lambda pipe, pkt: seen.append(pipe))
        network.send_from("a", make_packet("a", "b"))
        sim.run()
        assert seen == ["a->b"]

    def test_trace_attachment(self, sim, network, abc):
        trace = PacketTrace()
        network.attach_trace(trace)
        network.send_from("a", make_packet("a", "b"))
        sim.run()
        assert len(trace) == 1
        record = next(iter(trace))
        assert record.pipe == "a->b"
        assert record.time == 0  # recorded at transmission time
