"""Per-flow measurement state table."""

import pytest

from repro.core.flowtable import FlowTable
from repro.net.addr import FlowKey
from repro.units import SECONDS


def flow(index):
    return FlowKey("c", 40_000 + index, "vip", 80)


def make_table(**kwargs):
    created = []

    def factory(key):
        created.append(key)
        return {"flow": key}

    defaults = dict(capacity=4, idle_timeout=1 * SECONDS, sweep_every=2)
    defaults.update(kwargs)
    return FlowTable(factory, **defaults), created


class TestLifecycle:
    def test_creates_on_first_sight(self):
        table, created = make_table()
        state = table.get_or_create(flow(0), now=0)
        assert state["flow"] == flow(0)
        assert created == [flow(0)]
        assert table.stats.created == 1

    def test_returns_same_state_on_revisit(self):
        table, created = make_table()
        first = table.get_or_create(flow(0), now=0)
        second = table.get_or_create(flow(0), now=100)
        assert first is second
        assert len(created) == 1

    def test_peek_does_not_create(self):
        table, created = make_table()
        assert table.peek(flow(0)) is None
        assert created == []

    def test_remove(self):
        table, _ = make_table()
        table.get_or_create(flow(0), now=0)
        table.remove(flow(0))
        assert flow(0) not in table
        assert table.stats.removed == 1
        table.remove(flow(0))  # idempotent
        assert table.stats.removed == 1

    def test_contains_and_len(self):
        table, _ = make_table()
        table.get_or_create(flow(0), now=0)
        assert flow(0) in table
        assert len(table) == 1


class TestCapacity:
    def test_capacity_evicts_least_recently_used(self):
        table, _ = make_table(capacity=2)
        table.get_or_create(flow(0), now=0)
        table.get_or_create(flow(1), now=1)
        table.get_or_create(flow(0), now=2)   # refresh 0
        table.get_or_create(flow(2), now=3)   # evicts 1
        assert flow(1) not in table
        assert flow(0) in table
        assert table.stats.evicted_capacity == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            make_table(capacity=0)


class TestIdleEviction:
    def test_sweep_reaps_idle_flows(self):
        table, _ = make_table(idle_timeout=1 * SECONDS, sweep_every=2)
        table.get_or_create(flow(0), now=0)
        # Later activity on other flows triggers sweeps past the timeout.
        table.get_or_create(flow(1), now=3 * SECONDS)
        table.get_or_create(flow(2), now=3 * SECONDS)
        assert flow(0) not in table
        assert table.stats.evicted_idle == 1

    def test_active_flow_survives_sweeps(self):
        table, _ = make_table(idle_timeout=1 * SECONDS, sweep_every=1)
        for step in range(10):
            table.get_or_create(flow(0), now=step * SECONDS // 2)
        assert flow(0) in table

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            make_table(idle_timeout=0)
