"""Scenario configuration validation."""

import pytest

from repro.app.server import ServerConfig
from repro.errors import ConfigError
from repro.harness.config import (
    DelayInjection,
    NetworkParams,
    PolicyName,
    ScenarioConfig,
)
from repro.units import MICROSECONDS, MILLISECONDS, SECONDS


class TestNetworkParams:
    def test_defaults_valid(self):
        NetworkParams().validate()

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigError):
            NetworkParams(client_lb_delay=-1).validate()

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            NetworkParams(bandwidth_bps=0).validate()

    def test_client_delay_overrides(self):
        params = NetworkParams(
            client_lb_delay=10, client_lb_delay_overrides=[99]
        )
        assert params.client_delay(0) == 99
        assert params.client_delay(1) == 10  # beyond the override list

    def test_negative_override_rejected(self):
        with pytest.raises(ConfigError):
            NetworkParams(client_lb_delay_overrides=[-1]).validate()


class TestDelayInjection:
    def test_construction_warns_deprecated(self):
        with pytest.deprecated_call():
            DelayInjection(at=0, server="s0", extra=1000)

    def test_valid(self):
        with pytest.deprecated_call():
            injection = DelayInjection(at=0, server="s0", extra=1000)
        injection.validate()

    def test_negative_rejected(self):
        with pytest.deprecated_call():
            injection = DelayInjection(at=-1, server="s0", extra=0)
        with pytest.raises(ConfigError):
            injection.validate()

    def test_end_before_start_rejected(self):
        with pytest.deprecated_call():
            injection = DelayInjection(at=100, server="s0", extra=1, end=100)
        with pytest.raises(ConfigError):
            injection.validate()


class TestScenarioConfig:
    def test_defaults_valid(self):
        ScenarioConfig().validate()

    def test_duration_positive(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(duration=0).validate()

    def test_counts_positive(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(n_clients=0).validate()
        with pytest.raises(ConfigError):
            ScenarioConfig(n_servers=0).validate()

    def test_p2c_needs_two_servers(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(policy=PolicyName.POWER_OF_TWO, n_servers=1).validate()

    def test_server_overrides_length_checked(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(
                n_servers=2, server_overrides=[ServerConfig()]
            ).validate()

    def test_warmup_within_duration(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(duration=SECONDS, warmup=SECONDS).validate()

    def test_injection_within_duration(self):
        with pytest.deprecated_call():
            injection = DelayInjection(at=2 * SECONDS, server="server0", extra=1)
        config = ScenarioConfig(duration=SECONDS, injections=[injection])
        with pytest.raises(ConfigError):
            config.validate()

    def test_server_config_selection(self):
        override = ServerConfig(workers=9)
        config = ScenarioConfig(n_servers=1, server_overrides=[override])
        assert config.server_config(0) is override
        assert ScenarioConfig().server_config(1).workers == 1

    def test_names(self):
        config = ScenarioConfig()
        assert config.server_name(0) == "server0"
        assert config.client_name(2) == "client2"
