"""The ``repro compare`` race harness and the shared recovery metric."""

import random
from types import SimpleNamespace

import pytest

from repro import units
from repro.errors import ConfigError
from repro.faults import DelayFault
from repro.harness.compare import (
    RACE_PRESETS,
    compare_config,
    compare_point,
    run_compare,
)
from repro.harness.recovery import fault_window, time_to_recovery
from repro.sweep import ResultStore
from repro.units import MILLISECONDS, SECONDS

DURATION = units.seconds(0.25)
CONTROLLERS = ["alpha", "gradient", "proportional"]


def race(tmp_path, jobs=1, use_cache=True, store_dir="store"):
    return run_compare(
        ["fig3"],
        CONTROLLERS,
        duration=DURATION,
        jobs=jobs,
        store=ResultStore(str(tmp_path / store_dir)),
        use_cache=use_cache,
    )


class TestTimeToRecovery:
    """Pins the shared definition: baseline-relative tail-latency bands."""

    ONSET = 500 * MILLISECONDS

    def stub(self, baseline, series, warmup=100 * MILLISECONDS):
        return SimpleNamespace(
            config=SimpleNamespace(warmup=warmup),
            latencies=lambda op=None, start=None, end=None: baseline,
            latency_series=lambda bucket, op, q: series,
        )

    def test_no_fault_window_is_unjudgeable(self):
        result = self.stub([100] * 20, [])
        assert time_to_recovery(result, None) is None

    def test_no_prefault_traffic_is_unjudgeable(self):
        result = self.stub([], [(self.ONSET, 1000.0)])
        assert time_to_recovery(result, (self.ONSET, None)) is None

    def test_never_degraded_returns_zero(self):
        # Baseline p95 = 100; threshold = 150; post-fault stays at 120.
        series = [
            (self.ONSET + k * 100 * MILLISECONDS, 120.0) for k in range(4)
        ]
        result = self.stub([100] * 20, series)
        assert time_to_recovery(result, (self.ONSET, None)) == 0

    def test_recovery_measured_from_fault_onset(self):
        series = [
            (400 * MILLISECONDS, 90.0),   # pre-onset: ignored
            (500 * MILLISECONDS, 400.0),  # degraded at onset
            (600 * MILLISECONDS, 400.0),  # still degraded
            (700 * MILLISECONDS, 140.0),  # back inside 1.5x baseline
            (800 * MILLISECONDS, 90.0),
        ]
        result = self.stub([100] * 20, series)
        assert time_to_recovery(result, (self.ONSET, None)) == (
            200 * MILLISECONDS
        )

    def test_degraded_forever_returns_none(self):
        series = [
            (self.ONSET + k * 100 * MILLISECONDS, 500.0) for k in range(4)
        ]
        result = self.stub([100] * 20, series)
        assert time_to_recovery(result, (self.ONSET, None)) is None

    def test_fault_window_open_ended(self):
        config = SimpleNamespace(
            all_faults=lambda: [
                DelayFault(start=2 * SECONDS, extra=1, node="server0")
            ]
        )
        assert fault_window(config) == (2 * SECONDS, None)

    def test_fault_window_closed_and_empty(self):
        config = SimpleNamespace(
            all_faults=lambda: [
                DelayFault(
                    start=1 * SECONDS,
                    duration=1 * SECONDS,
                    extra=1,
                    node="server0",
                ),
                DelayFault(
                    start=2 * SECONDS,
                    duration=2 * SECONDS,
                    extra=1,
                    node="server0",
                ),
            ]
        )
        assert fault_window(config) == (1 * SECONDS, 4 * SECONDS)
        assert fault_window(SimpleNamespace(all_faults=lambda: [])) is None


class TestCompareConfig:
    def test_lane_isolates_the_strategy(self):
        a = compare_config("fig3", "alpha", duration=DURATION)
        b = compare_config("fig3", "morpheus", duration=DURATION)
        assert a.feedback.strategy == "alpha"
        assert b.feedback.strategy == "morpheus"
        assert a.faults[0].start == b.faults[0].start
        assert a.seed == b.seed
        assert a.resilience.enabled and b.resilience.enabled
        a.validate()

    def test_default_race_card_covers_the_chaos_presets(self):
        assert RACE_PRESETS == (
            "fig3",
            "flapping_server",
            "lossy_path",
            "correlated_burst",
            "crash",
            "elastic",
        )

    def test_roster_validated_up_front(self):
        with pytest.raises(ConfigError):
            run_compare(["fig3"], ["alpha", "typo"], duration=DURATION)
        with pytest.raises(ConfigError):
            run_compare([], ["alpha", "gradient"], duration=DURATION)
        with pytest.raises(ConfigError):
            run_compare(["fig3"], ["alpha"], duration=DURATION)


@pytest.mark.slow
class TestCompareDeterminism:
    def test_parallel_equals_serial_and_second_run_hits_cache(self, tmp_path):
        serial = race(tmp_path, jobs=1, store_dir="serial")
        parallel = race(tmp_path, jobs=2, store_dir="parallel")
        assert serial.rows == parallel.rows
        assert serial.leaderboard() == parallel.leaderboard()
        assert serial.report.simulated == len(CONTROLLERS)

        warm = race(tmp_path, jobs=2, store_dir="serial")
        assert warm.report.hits == len(CONTROLLERS)
        assert warm.report.simulated == 0
        assert warm.leaderboard() == serial.leaderboard()

    def test_row_shape_and_ranking_determinism(self, tmp_path):
        report = race(tmp_path)
        for (preset, name), row in report.rows.items():
            assert preset == "fig3"
            assert row["strategy"] == name
            assert row["requests"] > 0
            assert row["p95_ms"] is not None
        ranked = [name for name, _row in report.ranking("fig3")]
        assert sorted(ranked) == sorted(CONTROLLERS)
        # The leaderboard is a pure function of the cached rows.
        assert report.leaderboard() == report.leaderboard()

    def test_global_rng_isolated_from_results(self, tmp_path):
        random.seed(12345)
        first = race(tmp_path, store_dir="rng", use_cache=False)
        random.seed(99999)
        second = race(tmp_path, store_dir="rng2", use_cache=False)
        assert first.rows == second.rows
