"""Circuit breakers: CLOSED → OPEN → HALF_OPEN, lazily clocked.

The breaker is timer-free: state changes that depend only on elapsed
time happen on the next query, so everything here is driven by
explicit ``now`` values.
"""

import pytest

from repro.resilience.breaker import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)
from repro.units import MILLISECONDS

MS = MILLISECONDS


def make_breaker(**kwargs):
    defaults = dict(
        failure_threshold=3, reset_timeout=200 * MS, half_open_trials=2
    )
    defaults.update(kwargs)
    return CircuitBreaker("s0", BreakerConfig(**defaults))


class TestStateMachine:
    def test_closed_allows(self):
        assert make_breaker().allow(0)

    def test_opens_after_consecutive_failures(self):
        breaker = make_breaker(failure_threshold=3)
        breaker.record_failure(1 * MS)
        breaker.record_failure(2 * MS)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(3 * MS)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(4 * MS)

    def test_success_resets_the_failure_streak(self):
        """Only *consecutive* failures trip the breaker."""
        breaker = make_breaker(failure_threshold=3)
        for t in range(10):
            breaker.record_failure(t * MS)
            breaker.record_failure(t * MS)
            breaker.record_success(t * MS)
        assert breaker.state is BreakerState.CLOSED

    def test_softens_to_half_open_after_reset_timeout(self):
        breaker = make_breaker(reset_timeout=200 * MS)
        for _ in range(3):
            breaker.record_failure(0)
        assert not breaker.allow(199 * MS)
        assert breaker.allow(200 * MS)  # lazily moved to HALF_OPEN
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_admits_limited_trials(self):
        breaker = make_breaker(half_open_trials=2, reset_timeout=100 * MS)
        for _ in range(3):
            breaker.record_failure(0)
        now = 100 * MS
        assert breaker.allow(now)
        assert breaker.allow(now)
        assert not breaker.allow(now)  # trial slots exhausted

    def test_candidate_checks_do_not_consume_trials(self):
        breaker = make_breaker(half_open_trials=1, reset_timeout=100 * MS)
        for _ in range(3):
            breaker.record_failure(0)
        now = 100 * MS
        for _ in range(5):
            assert breaker.allow(now, admit=False)
        assert breaker.allow(now)  # the slot is still there
        assert not breaker.allow(now, admit=False)

    def test_trial_successes_close(self):
        breaker = make_breaker(half_open_trials=2, reset_timeout=100 * MS)
        for _ in range(3):
            breaker.record_failure(0)
        breaker.record_success(100 * MS)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success(101 * MS)
        assert breaker.state is BreakerState.CLOSED

    def test_trial_failure_reopens(self):
        breaker = make_breaker(reset_timeout=100 * MS)
        for _ in range(3):
            breaker.record_failure(0)
        breaker.record_failure(100 * MS)  # polls into HALF_OPEN, then fails
        assert breaker.state is BreakerState.OPEN
        # A fresh reset_timeout applies from the re-open.
        assert not breaker.allow(199 * MS)
        assert breaker.allow(200 * MS)

    def test_reopen_resets_trial_counters(self):
        breaker = make_breaker(half_open_trials=2, reset_timeout=100 * MS)
        for _ in range(3):
            breaker.record_failure(0)
        breaker.record_success(100 * MS)  # one trial success
        breaker.record_failure(101 * MS)  # re-open
        breaker.record_success(201 * MS)  # half-open again; counter fresh
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success(202 * MS)
        assert breaker.state is BreakerState.CLOSED


class TestBoard:
    def test_unseen_backend_is_closed_and_allowed(self):
        board = BreakerBoard()
        assert board.state("ghost") is BreakerState.CLOSED
        assert not board.is_open("ghost", 0)
        assert board.allow("ghost", 0)

    def test_transitions_logged_across_backends(self):
        board = BreakerBoard(BreakerConfig(failure_threshold=1))
        board.record_failure("s0", 1 * MS)
        board.record_failure("s1", 2 * MS)
        assert [(t.backend, t.to_state) for t in board.transitions] == [
            ("s0", BreakerState.OPEN),
            ("s1", BreakerState.OPEN),
        ]
        assert board.open_backends() == ["s0", "s1"]

    def test_is_open_polls_time(self):
        board = BreakerBoard(
            BreakerConfig(failure_threshold=1, reset_timeout=100 * MS)
        )
        board.record_failure("s0", 0)
        assert board.is_open("s0", 50 * MS)
        assert not board.is_open("s0", 100 * MS)  # now HALF_OPEN
        assert board.state("s0") is BreakerState.HALF_OPEN

    def test_states_snapshot(self):
        board = BreakerBoard(BreakerConfig(failure_threshold=1))
        board.record_success("s1", 0)
        board.record_failure("s0", 0)
        assert board.states() == {
            "s0": BreakerState.OPEN,
            "s1": BreakerState.CLOSED,
        }


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(failure_threshold=0),
            dict(reset_timeout=0),
            dict(half_open_trials=0),
        ],
    )
    def test_rejects_malformed(self, kwargs):
        with pytest.raises(ValueError):
            BreakerBoard(BreakerConfig(**kwargs))
