"""Shrinker: ddmin passes, bounds, determinism (predicate stubbed).

The predicate is monkeypatched so every test pins the reduction logic
exactly without simulating; the end-to-end shrink-on-a-real-violation
path lives in test_campaign_runner.py and the golden reproducer test.
"""

import pytest

import repro.campaign.shrink as shrink_module
from repro.campaign import CampaignPoint, ShrinkStats, shrink_point
from repro.errors import ConfigError
from repro.units import MILLISECONDS, SECONDS

MS = MILLISECONDS


def fault(kind, **extra):
    tree = {
        "kind": kind,
        "start": 400 * MS,
        "duration": 200 * MS,
        "period": None,
        "node": "server0",
        "direction": "lb->server",
    }
    tree.update(extra)
    return tree


def point(*faults):
    return CampaignPoint(
        run=0,
        seed=1,
        duration=2 * SECONDS,
        n_servers=3,
        n_clients=1,
        strategy="alpha",
        faults=list(faults),
        invariants=["recovery-bound"],
        recovery_bound=500 * MS,
    )


@pytest.fixture
def predicate(monkeypatch):
    """Install a fake runner; returns a setter taking fails(point)->bool."""

    def install(fails):
        def fake_run(candidate, store, use_cache):
            return {"violated": ["recovery-bound"] if fails(candidate) else []}

        monkeypatch.setattr(shrink_module, "_run", fake_run)

    return install


class TestDropPass:
    def test_shrinks_to_the_single_guilty_fault(self, predicate):
        predicate(lambda p: any(f["kind"] == "crash" for f in p.faults))
        original = point(
            fault("delay", extra=1 * MS),
            fault("crash"),
            fault("loss", prob=0.05),
            fault("jitter", amplitude=300_000),
        )
        shrunk, stats = shrink_point(original, ["recovery-bound"])
        assert [f["kind"] for f in shrunk.faults] == ["crash"]
        assert stats.from_faults == 4
        assert stats.to_faults == 1
        assert stats.accepted >= 3

    def test_keeps_jointly_necessary_faults(self, predicate):
        predicate(
            lambda p: {"crash", "loss"} <= {f["kind"] for f in p.faults}
        )
        original = point(
            fault("crash"), fault("loss", prob=0.05), fault("delay", extra=1 * MS)
        )
        shrunk, _stats = shrink_point(original, ["recovery-bound"])
        assert sorted(f["kind"] for f in shrunk.faults) == ["crash", "loss"]


class TestNarrowAndSoften:
    def test_windows_halve_to_the_predicate_floor(self, predicate):
        predicate(
            lambda p: all(f["duration"] >= 50 * MS for f in p.faults)
        )
        shrunk, _stats = shrink_point(point(fault("crash")), ["recovery-bound"])
        assert 50 * MS <= shrunk.faults[0]["duration"] < 100 * MS

    def test_magnitudes_halve_to_the_predicate_floor(self, predicate):
        predicate(
            lambda p: all(f["prob"] >= 0.02 for f in p.faults)
        )
        shrunk, _stats = shrink_point(
            point(fault("loss", prob=0.08)), ["recovery-bound"]
        )
        assert 0.02 <= shrunk.faults[0]["prob"] < 0.04

    def test_throttle_softens_by_raising_the_cap(self, predicate):
        predicate(
            lambda p: all(f["bandwidth_bps"] <= 800_000_000 for f in p.faults)
        )
        shrunk, _stats = shrink_point(
            point(fault("throttle", bandwidth_bps=100_000_000)),
            ["recovery-bound"],
        )
        assert 400_000_000 <= shrunk.faults[0]["bandwidth_bps"] <= 800_000_000

    def test_magnitudeless_kinds_are_left_alone(self, predicate):
        predicate(lambda p: True)
        original = point(fault("partition", direction="lb->server"))
        shrunk, _stats = shrink_point(original, ["recovery-bound"])
        assert shrunk.faults[0]["kind"] == "partition"
        # Only the window shrank; there is no magnitude to soften.
        assert shrunk.faults[0]["duration"] < 200 * MS


class TestBoundsAndDeterminism:
    def test_attempts_are_bounded(self, predicate):
        calls = []
        predicate(lambda p: calls.append(1) or True)
        _shrunk, stats = shrink_point(
            point(fault("delay", extra=2 * MS)),
            ["recovery-bound"],
            max_attempts=5,
        )
        assert stats.attempts <= 5
        assert len(calls) <= 5

    def test_same_inputs_shrink_identically(self, predicate):
        def fails(p):
            return any(f["kind"] == "crash" for f in p.faults)

        predicate(fails)
        original = point(fault("crash"), fault("delay", extra=1 * MS))
        a, stats_a = shrink_point(original, ["recovery-bound"])
        b, stats_b = shrink_point(original, ["recovery-bound"])
        assert a == b
        assert stats_a.as_dict() == stats_b.as_dict()

    def test_original_point_is_not_mutated(self, predicate):
        predicate(lambda p: True)
        original = point(fault("delay", extra=2 * MS), fault("crash"))
        before = [dict(f) for f in original.faults]
        shrink_point(original, ["recovery-bound"])
        assert original.faults == before

    def test_empty_violation_list_rejected(self):
        with pytest.raises(ConfigError, match="at least one"):
            shrink_point(point(fault("crash")), [])

    def test_stats_round_trip(self):
        stats = ShrinkStats(attempts=5, accepted=2, from_faults=4, to_faults=1)
        assert stats.as_dict() == {
            "attempts": 5,
            "accepted": 2,
            "from_faults": 4,
            "to_faults": 1,
        }
