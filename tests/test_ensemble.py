"""Algorithm 2 — ENSEMBLETIMEOUT: ensembles, epochs, sample cliffs."""

import pytest

from repro.core.ensemble import EnsembleConfig, EnsembleTimeout, default_timeouts
from repro.units import MICROSECONDS, MILLISECONDS


def feed_regular_batches(ensemble, rtt, duration, burst=4, intra_gap=2 * MICROSECONDS):
    """Feed batch arrivals: `burst` packets, then silence until next RTT."""
    samples = []
    t = 0
    while t < duration:
        for i in range(burst):
            sample = ensemble.observe(t + i * intra_gap)
            if sample is not None:
                samples.append((t + i * intra_gap, sample))
        t += rtt
    return samples


class TestDefaults:
    def test_paper_timeout_ladder(self):
        timeouts = default_timeouts()
        assert timeouts[0] == 64 * MICROSECONDS
        # Doubling from 64 us seven times ends at 4096 us — the paper's
        # "delta_7 = 4 ms" ladder.
        assert timeouts[-1] == 4096 * MICROSECONDS
        assert len(timeouts) == 7
        for a, b in zip(timeouts, timeouts[1:]):
            assert b == 2 * a

    def test_paper_epoch(self):
        assert EnsembleConfig().epoch == 64 * MILLISECONDS


class TestValidation:
    def test_needs_two_timeouts(self):
        with pytest.raises(ValueError):
            EnsembleConfig(timeouts=[100]).validate()

    def test_sorted_required(self):
        with pytest.raises(ValueError):
            EnsembleConfig(timeouts=[200, 100]).validate()

    def test_distinct_required(self):
        with pytest.raises(ValueError):
            EnsembleConfig(timeouts=[100, 100]).validate()

    def test_positive_required(self):
        with pytest.raises(ValueError):
            EnsembleConfig(timeouts=[0, 100]).validate()

    def test_epoch_positive(self):
        with pytest.raises(ValueError):
            EnsembleConfig(epoch=0).validate()

    def test_initial_index_in_range(self):
        with pytest.raises(ValueError):
            EnsembleConfig(initial_index=7).validate()


class TestSampleCounting:
    def test_counts_per_timeout_within_epoch(self):
        config = EnsembleConfig(
            timeouts=[64 * MICROSECONDS, 128 * MICROSECONDS, 256 * MICROSECONDS],
            epoch=100 * MILLISECONDS,
        )
        ensemble = EnsembleTimeout(config)
        # Batches 200us apart: timeouts 64 and 128 split them; 256 never.
        feed_regular_batches(ensemble, rtt=200 * MICROSECONDS, duration=50 * MILLISECONDS)
        counts = ensemble.sample_counts()
        assert counts[0] > 0
        assert counts[1] > 0
        assert counts[2] == 0
        assert counts[0] == counts[1]  # same true batches, no false splits

    def test_counts_reset_at_epoch(self):
        config = EnsembleConfig(epoch=10 * MILLISECONDS)
        ensemble = EnsembleTimeout(config)
        feed_regular_batches(ensemble, rtt=500 * MICROSECONDS, duration=11 * MILLISECONDS)
        # After crossing the epoch boundary the counters restarted.
        assert ensemble.epochs_completed >= 1
        assert max(ensemble.sample_counts()) < 25


class TestCliffDetection:
    def test_cliff_picks_largest_adjacent_drop(self):
        ensemble = EnsembleTimeout(EnsembleConfig(timeouts=[10, 20, 40, 80]))
        ensemble._counts = [50, 40, 38, 1]
        assert ensemble._detect_cliff() == 2  # 38/1 is the cliff

    def test_cliff_handles_zero_next_count(self):
        ensemble = EnsembleTimeout(EnsembleConfig(timeouts=[10, 20, 40]))
        ensemble._counts = [50, 45, 0]
        assert ensemble._detect_cliff() == 1  # 45/max(0,1)=45

    def test_idle_epoch_returns_none(self):
        ensemble = EnsembleTimeout(EnsembleConfig(timeouts=[10, 20]))
        ensemble._counts = [0, 0]
        assert ensemble._detect_cliff() is None

    def test_idle_epoch_keeps_previous_selection(self):
        config = EnsembleConfig(
            timeouts=[64 * MICROSECONDS, 128 * MICROSECONDS],
            epoch=1 * MILLISECONDS,
            initial_index=1,
        )
        ensemble = EnsembleTimeout(config)
        ensemble.observe(0)
        # Nothing for many epochs, then one packet: selection unchanged.
        ensemble.observe(10 * MILLISECONDS)
        assert ensemble.current_index == 1


class TestTimeoutAdaptation:
    def test_selects_timeout_below_batch_pause(self):
        """For clean 500us batches, the cliff sits at the largest timeout
        still below the pause — 256us in the paper ladder."""
        config = EnsembleConfig(epoch=20 * MILLISECONDS)
        ensemble = EnsembleTimeout(config)
        feed_regular_batches(
            ensemble, rtt=500 * MICROSECONDS, duration=45 * MILLISECONDS
        )
        assert ensemble.epochs_completed >= 2
        assert ensemble.current_timeout == 256 * MICROSECONDS

    def test_tracks_rtt_increase(self):
        config = EnsembleConfig(epoch=20 * MILLISECONDS)
        ensemble = EnsembleTimeout(config)
        feed_regular_batches(ensemble, rtt=500 * MICROSECONDS, duration=40 * MILLISECONDS)
        first_choice = ensemble.current_timeout
        # RTT grows to 3 ms; re-feed from t=40ms onward.
        t = 40 * MILLISECONDS
        while t < 150 * MILLISECONDS:
            ensemble.observe(t)
            ensemble.observe(t + 2 * MICROSECONDS)
            t += 3 * MILLISECONDS
        assert ensemble.current_timeout > first_choice
        assert ensemble.current_timeout >= 1 * MILLISECONDS

    def test_samples_come_from_selected_timeout(self):
        config = EnsembleConfig(epoch=20 * MILLISECONDS)
        ensemble = EnsembleTimeout(config)
        samples = feed_regular_batches(
            ensemble, rtt=500 * MICROSECONDS, duration=100 * MILLISECONDS
        )
        late = [s for t, s in samples if t > 50 * MILLISECONDS]
        assert late
        for sample in late:
            assert sample == pytest.approx(500 * MICROSECONDS, rel=0.05)

    def test_cliff_history_records_choices(self):
        config = EnsembleConfig(epoch=10 * MILLISECONDS)
        ensemble = EnsembleTimeout(config)
        feed_regular_batches(ensemble, rtt=500 * MICROSECONDS, duration=35 * MILLISECONDS)
        assert len(ensemble.cliff_history) == ensemble.epochs_completed
        for _time, index in ensemble.cliff_history:
            assert 0 <= index < len(config.timeouts)


class TestEpochBoundaries:
    def test_epoch_boundary_detected_before_processing(self):
        """The packet that opens an epoch is measured with the new δ."""
        config = EnsembleConfig(
            timeouts=[64 * MICROSECONDS, 128 * MICROSECONDS, 256 * MICROSECONDS],
            epoch=10 * MILLISECONDS,
            initial_index=0,
        )
        ensemble = EnsembleTimeout(config)
        feed_regular_batches(ensemble, rtt=500 * MICROSECONDS, duration=10 * MILLISECONDS)
        before = ensemble.epochs_completed
        ensemble.observe(10 * MILLISECONDS + 1)
        assert ensemble.epochs_completed == before + 1

    def test_multi_epoch_gap_resets_once(self):
        config = EnsembleConfig(epoch=10 * MILLISECONDS)
        ensemble = EnsembleTimeout(config)
        ensemble.observe(0)
        ensemble.observe(100 * MILLISECONDS)  # 10 epochs later
        assert ensemble.epochs_completed == 1
