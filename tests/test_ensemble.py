"""Algorithm 2 — ENSEMBLETIMEOUT: ensembles, epochs, sample cliffs."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ensemble import EnsembleConfig, EnsembleTimeout, default_timeouts
from repro.units import MICROSECONDS, MILLISECONDS


def feed_regular_batches(ensemble, rtt, duration, burst=4, intra_gap=2 * MICROSECONDS):
    """Feed batch arrivals: `burst` packets, then silence until next RTT."""
    samples = []
    t = 0
    while t < duration:
        for i in range(burst):
            sample = ensemble.observe(t + i * intra_gap)
            if sample is not None:
                samples.append((t + i * intra_gap, sample))
        t += rtt
    return samples


class TestDefaults:
    def test_paper_timeout_ladder(self):
        timeouts = default_timeouts()
        assert timeouts[0] == 64 * MICROSECONDS
        # Doubling from 64 us seven times ends at 4096 us — the paper's
        # "delta_7 = 4 ms" ladder.
        assert timeouts[-1] == 4096 * MICROSECONDS
        assert len(timeouts) == 7
        for a, b in zip(timeouts, timeouts[1:]):
            assert b == 2 * a

    def test_paper_epoch(self):
        assert EnsembleConfig().epoch == 64 * MILLISECONDS


class TestValidation:
    def test_needs_two_timeouts(self):
        with pytest.raises(ValueError):
            EnsembleConfig(timeouts=[100]).validate()

    def test_sorted_required(self):
        with pytest.raises(ValueError):
            EnsembleConfig(timeouts=[200, 100]).validate()

    def test_distinct_required(self):
        with pytest.raises(ValueError):
            EnsembleConfig(timeouts=[100, 100]).validate()

    def test_positive_required(self):
        with pytest.raises(ValueError):
            EnsembleConfig(timeouts=[0, 100]).validate()

    def test_epoch_positive(self):
        with pytest.raises(ValueError):
            EnsembleConfig(epoch=0).validate()

    def test_initial_index_in_range(self):
        with pytest.raises(ValueError):
            EnsembleConfig(initial_index=7).validate()


class TestSampleCounting:
    def test_counts_per_timeout_within_epoch(self):
        config = EnsembleConfig(
            timeouts=[64 * MICROSECONDS, 128 * MICROSECONDS, 256 * MICROSECONDS],
            epoch=100 * MILLISECONDS,
        )
        ensemble = EnsembleTimeout(config)
        # Batches 200us apart: timeouts 64 and 128 split them; 256 never.
        feed_regular_batches(ensemble, rtt=200 * MICROSECONDS, duration=50 * MILLISECONDS)
        counts = ensemble.sample_counts()
        assert counts[0] > 0
        assert counts[1] > 0
        assert counts[2] == 0
        assert counts[0] == counts[1]  # same true batches, no false splits

    def test_counts_reset_at_epoch(self):
        config = EnsembleConfig(epoch=10 * MILLISECONDS)
        ensemble = EnsembleTimeout(config)
        feed_regular_batches(ensemble, rtt=500 * MICROSECONDS, duration=11 * MILLISECONDS)
        # After crossing the epoch boundary the counters restarted.
        assert ensemble.epochs_completed >= 1
        assert max(ensemble.sample_counts()) < 25


class TestCliffDetection:
    def test_cliff_picks_largest_adjacent_drop(self):
        ensemble = EnsembleTimeout(EnsembleConfig(timeouts=[10, 20, 40, 80]))
        ensemble._counts = [50, 40, 38, 1]
        assert ensemble._detect_cliff() == 2  # 38/1 is the cliff

    def test_cliff_handles_zero_next_count(self):
        ensemble = EnsembleTimeout(EnsembleConfig(timeouts=[10, 20, 40]))
        ensemble._counts = [50, 45, 0]
        assert ensemble._detect_cliff() == 1  # 45/max(0,1)=45

    def test_idle_epoch_returns_none(self):
        ensemble = EnsembleTimeout(EnsembleConfig(timeouts=[10, 20]))
        ensemble._counts = [0, 0]
        assert ensemble._detect_cliff() is None

    def test_idle_epoch_keeps_previous_selection(self):
        config = EnsembleConfig(
            timeouts=[64 * MICROSECONDS, 128 * MICROSECONDS],
            epoch=1 * MILLISECONDS,
            initial_index=1,
        )
        ensemble = EnsembleTimeout(config)
        ensemble.observe(0)
        # Nothing for many epochs, then one packet: selection unchanged.
        ensemble.observe(10 * MILLISECONDS)
        assert ensemble.current_index == 1


class TestTimeoutAdaptation:
    def test_selects_timeout_below_batch_pause(self):
        """For clean 500us batches, the cliff sits at the largest timeout
        still below the pause — 256us in the paper ladder."""
        config = EnsembleConfig(epoch=20 * MILLISECONDS)
        ensemble = EnsembleTimeout(config)
        feed_regular_batches(
            ensemble, rtt=500 * MICROSECONDS, duration=45 * MILLISECONDS
        )
        assert ensemble.epochs_completed >= 2
        assert ensemble.current_timeout == 256 * MICROSECONDS

    def test_tracks_rtt_increase(self):
        config = EnsembleConfig(epoch=20 * MILLISECONDS)
        ensemble = EnsembleTimeout(config)
        feed_regular_batches(ensemble, rtt=500 * MICROSECONDS, duration=40 * MILLISECONDS)
        first_choice = ensemble.current_timeout
        # RTT grows to 3 ms; re-feed from t=40ms onward.
        t = 40 * MILLISECONDS
        while t < 150 * MILLISECONDS:
            ensemble.observe(t)
            ensemble.observe(t + 2 * MICROSECONDS)
            t += 3 * MILLISECONDS
        assert ensemble.current_timeout > first_choice
        assert ensemble.current_timeout >= 1 * MILLISECONDS

    def test_samples_come_from_selected_timeout(self):
        config = EnsembleConfig(epoch=20 * MILLISECONDS)
        ensemble = EnsembleTimeout(config)
        samples = feed_regular_batches(
            ensemble, rtt=500 * MICROSECONDS, duration=100 * MILLISECONDS
        )
        late = [s for t, s in samples if t > 50 * MILLISECONDS]
        assert late
        for sample in late:
            assert sample == pytest.approx(500 * MICROSECONDS, rel=0.05)

    def test_cliff_history_records_choices(self):
        config = EnsembleConfig(epoch=10 * MILLISECONDS)
        ensemble = EnsembleTimeout(config)
        feed_regular_batches(ensemble, rtt=500 * MICROSECONDS, duration=35 * MILLISECONDS)
        assert len(ensemble.cliff_history) == ensemble.epochs_completed
        for _time, index in ensemble.cliff_history:
            assert 0 <= index < len(config.timeouts)


def assert_paths_agree(config, trace):
    """Feed ``trace`` to a fused and a naive ensemble; all outputs match."""
    fused = EnsembleTimeout(config, fused=True)
    naive = EnsembleTimeout(config, fused=False)
    for now in trace:
        assert fused.observe(now) == naive.observe(now), "at t=%d" % now
    assert fused.sample_counts() == naive.sample_counts()
    assert fused.cliff_history == naive.cliff_history
    assert fused.epochs_completed == naive.epochs_completed
    assert fused.current_index == naive.current_index
    for f_view, n_inst in zip(fused.instances, naive.instances):
        assert f_view.delta == n_inst.delta
        assert f_view.samples_produced == n_inst.samples_produced
        assert f_view.time_last_batch == n_inst.time_last_batch
        assert f_view.time_last_pkt == n_inst.time_last_pkt


class TestFusedDifferential:
    """The O(log k) fused path is byte-identical to the naive k-loop."""

    def test_gaps_straddling_every_delta(self):
        """Bursty trace whose gaps land on, below, and above each δᵢ."""
        config = EnsembleConfig(epoch=10 * MILLISECONDS)
        deltas = list(config.timeouts)
        trace, t = [], 0
        for delta in deltas:
            for gap in (delta - 1, delta, delta + 1, 2 * delta, 1):
                t += gap
                trace.append(t)
        assert_paths_agree(config, trace)

    def test_idle_multi_epoch_gaps(self):
        config = EnsembleConfig(epoch=5 * MILLISECONDS)
        trace, t = [], 0
        for gap in (
            100,
            30 * MILLISECONDS,  # 6 idle epochs
            200 * MICROSECONDS,
            1,
            120 * MILLISECONDS,  # 24 idle epochs
            64 * MICROSECONDS,
            64 * MICROSECONDS + 1,
        ):
            t += gap
            trace.append(t)
        assert_paths_agree(config, trace)

    def test_randomized_traces(self):
        """Seeded random walks mixing intra-batch, inter-batch, and idle."""
        gaps_menu = [
            1,
            2_000,
            63 * MICROSECONDS,
            64 * MICROSECONDS,
            64 * MICROSECONDS + 1,
            500 * MICROSECONDS,
            4 * MILLISECONDS,
            5 * MILLISECONDS,
            70 * MILLISECONDS,
            300 * MILLISECONDS,
        ]
        for seed in range(10):
            rng = random.Random(seed)
            trace, t = [], 0
            for _ in range(2_000):
                t += rng.choice(gaps_menu)
                trace.append(t)
            assert_paths_agree(EnsembleConfig(), trace)

    @settings(max_examples=60, deadline=None)
    @given(
        gaps=st.lists(
            st.integers(min_value=0, max_value=100 * MILLISECONDS),
            min_size=1,
            max_size=300,
        ),
        epoch=st.integers(min_value=1 * MILLISECONDS, max_value=80 * MILLISECONDS),
        initial_index=st.integers(min_value=0, max_value=6),
    )
    def test_property_fused_equals_naive(self, gaps, epoch, initial_index):
        config = EnsembleConfig(epoch=epoch, initial_index=initial_index)
        trace, t = [], 0
        for gap in gaps:
            t += gap
            trace.append(t)
        assert_paths_agree(config, trace)

    def test_fused_is_default(self):
        assert EnsembleTimeout().fused is True


class TestEpochBoundaries:
    def test_epoch_boundary_detected_before_processing(self):
        """The packet that opens an epoch is measured with the new δ."""
        config = EnsembleConfig(
            timeouts=[64 * MICROSECONDS, 128 * MICROSECONDS, 256 * MICROSECONDS],
            epoch=10 * MILLISECONDS,
            initial_index=0,
        )
        ensemble = EnsembleTimeout(config)
        feed_regular_batches(ensemble, rtt=500 * MICROSECONDS, duration=10 * MILLISECONDS)
        before = ensemble.epochs_completed
        ensemble.observe(10 * MILLISECONDS + 1)
        assert ensemble.epochs_completed == before + 1

    def test_multi_epoch_gap_resets_once(self):
        config = EnsembleConfig(epoch=10 * MILLISECONDS)
        ensemble = EnsembleTimeout(config)
        ensemble.observe(0)
        ensemble.observe(100 * MILLISECONDS)  # 10 epochs later
        assert ensemble.epochs_completed == 1
