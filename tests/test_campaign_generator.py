"""Schedule generator: determinism, budget, validity, protected server."""

import json

import pytest

from repro.campaign import (
    ALL_KINDS,
    GeneratorConfig,
    fault_intensity,
    generate_schedule,
    schedule_intensity,
)
from repro.campaign.config import HARD_KINDS
from repro.errors import ConfigError
from repro.faults import fault_to_dict
from repro.units import SECONDS

DURATION = 2 * SECONDS


def canonical(schedule):
    return json.dumps([fault_to_dict(f) for f in schedule], sort_keys=True)


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        a = generate_schedule(GeneratorConfig(), DURATION, 3, seed=42)
        b = generate_schedule(GeneratorConfig(), DURATION, 3, seed=42)
        assert canonical(a) == canonical(b)

    def test_seeds_diversify(self):
        schedules = {
            canonical(generate_schedule(GeneratorConfig(), DURATION, 3, seed=s))
            for s in range(8)
        }
        assert len(schedules) > 1

    def test_fleet_flag_changes_only_hard_kinds(self):
        config = GeneratorConfig(kinds=("delay",), max_faults=3)
        a = generate_schedule(config, DURATION, 3, seed=5)
        b = generate_schedule(config, DURATION, 3, seed=5, fleet=True)
        assert canonical(a) == canonical(b)


class TestValidity:
    @pytest.mark.parametrize("seed", range(12))
    def test_schedules_are_valid_and_windowed(self, seed):
        schedule = generate_schedule(GeneratorConfig(), DURATION, 3, seed=seed)
        config = GeneratorConfig()
        assert config.min_faults <= len(schedule) <= config.max_faults
        for fault in schedule:
            fault.validate()
            assert fault.period is None  # one-shot: recovery needs an end
            assert fault.duration is not None
            assert fault.start >= int(DURATION * config.onset_min)
            assert fault.start + fault.duration < DURATION
            assert fault.node in ("server0", "server1", "server2")

    def test_budget_bounds_multi_fault_schedules(self):
        config = GeneratorConfig(
            max_faults=8, min_faults=8, intensity_budget=3.0
        )
        for seed in range(8):
            schedule = generate_schedule(config, DURATION, 3, seed=seed)
            if len(schedule) > 1:
                assert schedule_intensity(schedule) <= config.intensity_budget

    def test_intensity_scales_with_magnitude(self):
        from repro.faults import DelayFault, LossFault

        mild = DelayFault(start=0, duration=1, extra=100_000)
        harsh = DelayFault(start=0, duration=1, extra=2_000_000)
        assert fault_intensity(harsh) > fault_intensity(mild)
        assert fault_intensity(
            LossFault(start=0, duration=1, prob=0.07)
        ) > fault_intensity(LossFault(start=0, duration=1, prob=0.01))

    def test_sorted_presentation_order(self):
        schedule = generate_schedule(
            GeneratorConfig(max_faults=4, min_faults=4, intensity_budget=50),
            DURATION,
            3,
            seed=3,
        )
        starts = [f.start for f in schedule]
        assert starts == sorted(starts)


class TestProtectedServer:
    def test_hard_faults_never_hit_the_protected_backend(self):
        # With 2 servers and one protected, every hard fault in a
        # schedule must land on the same (unprotected) node.
        config = GeneratorConfig(
            kinds=HARD_KINDS,
            min_faults=6,
            max_faults=6,
            intensity_budget=100.0,
        )
        for seed in range(10):
            schedule = generate_schedule(config, DURATION, 2, seed=seed)
            assert len({f.node for f in schedule}) == 1

    def test_fleet_runs_exclude_hard_kinds(self):
        config = GeneratorConfig(
            kinds=ALL_KINDS, min_faults=8, max_faults=8, intensity_budget=100.0
        )
        for seed in range(6):
            schedule = generate_schedule(
                config, DURATION, 3, seed=seed, fleet=True
            )
            assert not any(f.kind in HARD_KINDS for f in schedule)


class TestConfigValidation:
    def test_bad_fault_counts(self):
        with pytest.raises(ConfigError):
            GeneratorConfig(min_faults=0).validate()
        with pytest.raises(ConfigError):
            GeneratorConfig(min_faults=5, max_faults=2).validate()

    def test_unknown_kind(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            GeneratorConfig(kinds=("delay", "gremlin")).validate()

    def test_windows_must_end_before_the_run(self):
        with pytest.raises(ConfigError, match="below 1"):
            GeneratorConfig(onset_max=0.8, window_max=0.3).validate()

    def test_bad_budget(self):
        with pytest.raises(ConfigError):
            GeneratorConfig(intensity_budget=0).validate()
