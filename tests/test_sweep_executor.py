"""Sweep executor: caching, fan-out, determinism, crash recovery."""

import os

import pytest

from repro.errors import ConfigError, SweepError
from repro.harness.config import ScenarioConfig
from repro.sweep import (
    ResultStore,
    SweepSpec,
    canonical_json,
    config_key,
    run_sweep,
    run_tasks,
    task,
)
from repro.units import MILLISECONDS


# Runner functions must be module-level: workers import them by
# reference, and the content hash records that reference.

def _double(payload):
    return {"value": payload["x"] * 2}


def _fail_until_marker(payload):
    """Raise (ordinary exception) until the marker file exists."""
    marker = payload["marker"]
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("attempted")
        raise ValueError("transient failure")
    return {"recovered": True}


def _exit_until_marker(payload):
    """Kill the worker process outright until the marker file exists."""
    marker = payload["marker"]
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("attempted")
        os._exit(1)
    return {"recovered": True}


def _always_fails(payload):
    raise ValueError("permanent failure")


def _always_exits(payload):
    os._exit(1)


def _touch_and_double(payload):
    with open(
        os.path.join(payload["dir"], "run-%d" % os.getpid()), "a"
    ) as handle:
        handle.write("x")
    return {"value": payload["x"] * 2}


def _not_a_row(payload):
    return [1, 2, 3]


class TestCanonicalIdentity:
    def test_key_is_stable_and_value_sensitive(self):
        a = task(_double, {"x": 1})
        b = task(_double, {"x": 1})
        c = task(_double, {"x": 2})
        assert a.key == b.key
        assert a.key != c.key

    def test_key_depends_on_runner(self):
        assert task(_double, {"x": 1}).key != task(_touch_and_double, {"x": 1}).key

    def test_scenario_configs_have_stable_keys(self):
        a = ScenarioConfig(seed=3, duration=100 * MILLISECONDS)
        b = ScenarioConfig(seed=3, duration=100 * MILLISECONDS)
        assert config_key(a) == config_key(b)
        assert config_key(a) != config_key(ScenarioConfig(seed=4))

    def test_unserializable_payload_rejected(self):
        with pytest.raises(ConfigError):
            task(_double, {"x": lambda: 1})


class TestExecution:
    def test_serial_runs_in_submission_order(self):
        tasks = [task(_double, {"x": x}, label="x=%d" % x) for x in (3, 1, 2)]
        report = run_tasks(tasks, jobs=1)
        assert [row["value"] for row in report.rows] == [6, 2, 4]
        assert report.simulated == 3 and report.hits == 0

    def test_parallel_preserves_submission_order(self):
        tasks = [task(_double, {"x": x}) for x in range(5)]
        report = run_tasks(tasks, jobs=4)
        assert [row["value"] for row in report.rows] == [0, 2, 4, 6, 8]

    def test_non_dict_row_rejected(self):
        with pytest.raises(SweepError, match="expected a dict row"):
            run_tasks([task(_not_a_row, {"x": 1})], jobs=1)

    def test_progress_callback_sees_every_point(self):
        seen = []
        tasks = [task(_double, {"x": x}) for x in range(3)]
        run_tasks(tasks, jobs=1, progress=lambda o, d, t: seen.append((d, t)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_summary_line_format(self):
        report = run_tasks([task(_double, {"x": 1})], jobs=1)
        assert report.summary("demo").startswith(
            "sweep demo: 1 points, 0 cache hits, 1 simulated, wall "
        )


class TestCaching:
    def test_rerun_is_all_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        tasks = [task(_double, {"x": x}) for x in range(3)]
        cold = run_tasks(tasks, jobs=1, store=store)
        warm = run_tasks(tasks, jobs=1, store=store)
        assert cold.simulated == 3 and cold.hits == 0
        assert warm.simulated == 0 and warm.hits == 3
        assert warm.rows == cold.rows

    def test_no_cache_recomputes(self, tmp_path):
        store = ResultStore(tmp_path)
        tasks = [task(_double, {"x": 1})]
        run_tasks(tasks, jobs=1, store=store)
        again = run_tasks(tasks, jobs=1, store=store, use_cache=False)
        assert again.simulated == 1 and again.hits == 0

    def test_duplicate_tasks_simulate_once(self, tmp_path):
        tasks = [
            task(_touch_and_double, {"dir": str(tmp_path), "x": 5}),
            task(_touch_and_double, {"dir": str(tmp_path), "x": 5}),
        ]
        report = run_tasks(tasks, jobs=1)
        assert report.rows[0] == report.rows[1]
        assert report.simulated == 1 and report.hits == 1
        total = sum(
            len(p.read_text()) for p in tmp_path.iterdir()
        )
        assert total == 1  # the runner ran exactly once

    def test_interrupted_sweep_resumes(self, tmp_path):
        store = ResultStore(tmp_path)
        first = [task(_double, {"x": 1})]
        run_tasks(first, jobs=1, store=store)
        # A later, larger submission reuses the finished point.
        both = [task(_double, {"x": 1}), task(_double, {"x": 2})]
        report = run_tasks(both, jobs=1, store=store)
        assert report.hits == 1 and report.simulated == 1


class TestRetry:
    def test_transient_exception_retried_serial(self, tmp_path):
        marker = str(tmp_path / "marker")
        report = run_tasks([task(_fail_until_marker, {"marker": marker})], jobs=1)
        assert report.rows[0] == {"recovered": True}
        assert report.outcomes[0].attempts == 2

    def test_transient_exception_retried_parallel(self, tmp_path):
        tasks = [
            task(_fail_until_marker, {"marker": str(tmp_path / "marker")}),
            task(_double, {"x": 1}),
        ]
        report = run_tasks(tasks, jobs=2)
        assert report.rows[0] == {"recovered": True}
        assert report.rows[1] == {"value": 2}

    def test_worker_crash_retried(self, tmp_path):
        # The first attempt kills its worker process (as an OOM kill
        # would); the pool is rebuilt and the point retried.
        tasks = [
            task(_exit_until_marker, {"marker": str(tmp_path / "marker")}),
            task(_double, {"x": 1}),
        ]
        report = run_tasks(tasks, jobs=2)
        assert report.rows[0] == {"recovered": True}
        assert report.rows[1] == {"value": 2}
        assert report.simulated == 2

    def test_permanent_failure_raises_sweep_error(self):
        with pytest.raises(SweepError, match="failed after 2 attempts"):
            run_tasks([task(_always_fails, {})], jobs=1, retries=1)

    def test_permanent_crash_raises_sweep_error(self):
        tasks = [task(_always_exits, {}), task(_double, {"x": 1})]
        with pytest.raises(SweepError, match="worker process died"):
            run_tasks(tasks, jobs=2, retries=1)


class TestWorkerDeterminism:
    """Satellite: jobs=1 and jobs=N produce byte-identical rows."""

    SPEC = dict(
        base=ScenarioConfig(duration=100 * MILLISECONDS),
        grid={"feedback.controller.alpha": [0.1, 0.2]},
        seeds=[1, 2],
    )

    def test_jobs_1_equals_jobs_4(self):
        serial = run_sweep(SweepSpec(**self.SPEC), jobs=1)
        parallel = run_sweep(SweepSpec(**self.SPEC), jobs=4)
        assert len(serial.rows) == 4
        assert canonical_json(serial.rows) == canonical_json(parallel.rows)

    def test_cached_rows_match_fresh_rows(self, tmp_path):
        store = ResultStore(tmp_path)
        fresh = run_sweep(SweepSpec(**self.SPEC), jobs=2, store=store)
        cached = run_sweep(SweepSpec(**self.SPEC), jobs=2, store=store)
        assert cached.hits == 4 and cached.simulated == 0
        assert canonical_json(fresh.rows) == canonical_json(cached.rows)
