"""Scenario assembly: topology shape, policies, injections."""

import pytest

from repro.errors import ConfigError
from repro.faults import DelayFault
from repro.harness.config import PolicyName, ScenarioConfig
from repro.harness.scenario import build_scenario
from repro.lb.policies import (
    LeastConnections,
    MaglevPolicy,
    PowerOfTwoChoices,
    RandomPolicy,
    RoundRobin,
    WeightedRandom,
)
from repro.units import MILLISECONDS, SECONDS


def small_config(**kwargs):
    defaults = dict(duration=100 * MILLISECONDS, n_clients=2, n_servers=2)
    defaults.update(kwargs)
    return ScenarioConfig(**defaults)


class TestTopology:
    def test_all_nodes_present(self):
        scenario = build_scenario(small_config())
        for name in ("lb", "client0", "client1", "server0", "server1"):
            scenario.network.get_node(name)

    def test_dsr_pipes_exist(self):
        scenario = build_scenario(small_config())
        network = scenario.network
        # Forward path pieces.
        network.pipe("client0", "lb")
        network.pipe("lb", "server0")
        # Direct return path.
        network.pipe("server0", "client0")
        network.pipe("server1", "client1")
        # And crucially no LB→client or server→LB return pipes.
        from repro.errors import NetworkError

        with pytest.raises(NetworkError):
            network.pipe("lb", "client0")
        with pytest.raises(NetworkError):
            network.pipe("server0", "lb")

    def test_far_client_override_applied(self):
        from repro.harness.config import NetworkParams

        config = small_config(
            network=NetworkParams(client_lb_delay_overrides=[5 * MILLISECONDS])
        )
        scenario = build_scenario(config)
        assert scenario.network.pipe("client0", "lb").prop_delay == 5 * MILLISECONDS
        # Return path raised by the same extra margin.
        base = config.network.server_client_delay
        extra = 5 * MILLISECONDS - config.network.client_lb_delay
        assert scenario.network.pipe("server0", "client0").prop_delay == base + extra
        # Second client untouched.
        assert scenario.network.pipe("client1", "lb").prop_delay == config.network.client_lb_delay


class TestPolicies:
    @pytest.mark.parametrize(
        "policy,cls",
        [
            (PolicyName.MAGLEV, MaglevPolicy),
            (PolicyName.FEEDBACK, MaglevPolicy),
            (PolicyName.ORACLE, MaglevPolicy),
            (PolicyName.ROUND_ROBIN, RoundRobin),
            (PolicyName.RANDOM, RandomPolicy),
            (PolicyName.WEIGHTED_RANDOM, WeightedRandom),
            (PolicyName.LEAST_CONNECTIONS, LeastConnections),
            (PolicyName.POWER_OF_TWO, PowerOfTwoChoices),
        ],
    )
    def test_policy_selection(self, policy, cls):
        scenario = build_scenario(small_config(policy=policy))
        assert isinstance(scenario.lb.policy, cls)

    def test_feedback_wiring(self):
        scenario = build_scenario(small_config(policy=PolicyName.FEEDBACK))
        assert scenario.feedback is not None
        assert scenario.oracle is None

    def test_oracle_wiring(self):
        scenario = build_scenario(small_config(policy=PolicyName.ORACLE))
        assert scenario.oracle is not None
        assert scenario.feedback is None
        for client in scenario.clients:
            assert client.on_record is not None

    def test_plain_maglev_has_no_control_plane(self):
        scenario = build_scenario(small_config(policy=PolicyName.MAGLEV))
        assert scenario.feedback is None
        assert scenario.oracle is None


class TestInjections:
    def test_injection_schedules_extra_delay(self):
        config = small_config(
            faults=[
                DelayFault(
                    start=10 * MILLISECONDS,
                    duration=10 * MILLISECONDS,
                    extra=1 * MILLISECONDS,
                    node="server0",
                )
            ]
        )
        scenario = build_scenario(config)
        pipe = scenario.network.pipe("lb", "server0")
        assert pipe.extra_delay == 0
        scenario.sim.run_until(10 * MILLISECONDS)
        assert pipe.extra_delay == 1 * MILLISECONDS
        scenario.sim.run_until(20 * MILLISECONDS)
        assert pipe.extra_delay == 0

    def test_unknown_injection_target_rejected(self):
        config = small_config(
            faults=[DelayFault(start=0, extra=1, node="serverX")]
        )
        with pytest.raises(ConfigError):
            build_scenario(config)

    def test_determinism_same_seed_same_trace(self):
        from repro.harness.runner import run_scenario

        a = run_scenario(small_config(seed=5))
        b = run_scenario(small_config(seed=5))
        assert len(a.records) == len(b.records)
        assert [r.latency for r in a.records[:100]] == [
            r.latency for r in b.records[:100]
        ]

    def test_different_seed_different_trace(self):
        from repro.harness.runner import run_scenario

        a = run_scenario(small_config(seed=5))
        b = run_scenario(small_config(seed=6))
        assert [r.latency for r in a.records[:200]] != [
            r.latency for r in b.records[:200]
        ]
