"""Discrete-event engine semantics."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator, Timer


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0

    def test_event_fires_at_scheduled_time(self, sim):
        fired = []
        sim.schedule(1000, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1000]

    def test_absolute_scheduling(self, sim):
        fired = []
        sim.schedule_at(5_000, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5000]

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(300, lambda: order.append("c"))
        sim.schedule(100, lambda: order.append("a"))
        sim.schedule(200, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self, sim):
        order = []
        for label in "abcde":
            sim.schedule(42, lambda l=label: order.append(l))
        sim.run()
        assert order == list("abcde")

    def test_zero_delay_fires_after_current_instant_events(self, sim):
        order = []

        def first():
            order.append("first")
            sim.schedule(0, lambda: order.append("nested"))

        sim.schedule(10, first)
        sim.schedule(10, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second", "nested"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_scheduling_in_past_rejected(self, sim):
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(50, lambda: None)

    def test_events_scheduled_during_run_execute(self, sim):
        fired = []

        def outer():
            sim.schedule(50, lambda: fired.append(sim.now))

        sim.schedule(100, outer)
        sim.run()
        assert fired == [150]


class TestRunUntil:
    def test_stops_at_boundary(self, sim):
        fired = []
        sim.schedule(100, lambda: fired.append("early"))
        sim.schedule(5000, lambda: fired.append("late"))
        sim.run_until(1000)
        assert fired == ["early"]
        assert sim.now == 1000

    def test_boundary_inclusive(self, sim):
        fired = []
        sim.schedule(1000, lambda: fired.append(sim.now))
        sim.run_until(1000)
        assert fired == [1000]

    def test_clock_advances_to_bound_even_if_idle(self, sim):
        sim.run_until(777)
        assert sim.now == 777

    def test_resume_after_run_until(self, sim):
        fired = []
        sim.schedule(2000, lambda: fired.append(sim.now))
        sim.run_until(1000)
        assert fired == []
        sim.run_until(3000)
        assert fired == [2000]

    def test_max_events_bound(self, sim):
        for i in range(10):
            sim.schedule(i + 1, lambda: None)
        processed = sim.run_until(100, max_events=3)
        assert processed == 3


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(100, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(100, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_cancel_one_of_many(self, sim):
        fired = []
        keep = sim.schedule(100, lambda: fired.append("keep"))
        drop = sim.schedule(100, lambda: fired.append("drop"))
        drop.cancel()
        sim.run()
        assert fired == ["keep"]
        assert not keep.cancelled

    def test_events_processed_counts_only_fired(self, sim):
        sim.schedule(1, lambda: None)
        dropped = sim.schedule(2, lambda: None)
        dropped.cancel()
        sim.run()
        assert sim.events_processed == 1


class TestStep:
    def test_step_fires_single_event(self, sim):
        fired = []
        sim.schedule(10, lambda: fired.append("a"))
        sim.schedule(20, lambda: fired.append("b"))
        assert sim.step() is True
        assert fired == ["a"]
        assert sim.now == 10

    def test_step_on_empty_queue(self, sim):
        assert sim.step() is False

    def test_step_skips_cancelled(self, sim):
        fired = []
        sim.schedule(10, lambda: None).cancel()
        sim.schedule(20, lambda: fired.append("b"))
        assert sim.step() is True
        assert fired == ["b"]


class TestReentrancy:
    def test_reentrant_run_rejected(self, sim):
        def evil():
            sim.run()

        sim.schedule(10, evil)
        with pytest.raises(SimulationError):
            sim.run()


class TestTimer:
    def test_fires_after_delay(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(500)
        sim.run()
        assert fired == [500]

    def test_restart_supersedes(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(500)
        timer.start(900)
        sim.run()
        assert fired == [900]

    def test_stop_prevents_fire(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(500)
        timer.stop()
        sim.run()
        assert fired == []

    def test_running_and_deadline(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.running
        assert timer.deadline is None
        timer.start(100)
        assert timer.running
        assert timer.deadline == 100
        sim.run()
        assert not timer.running

    def test_timer_can_rearm_from_callback(self, sim):
        fired = []

        def tick():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(100)

        timer = Timer(sim, tick)
        timer.start(100)
        sim.run()
        assert fired == [100, 200, 300]

    def test_stop_idempotent(self, sim):
        timer = Timer(sim, lambda: None)
        timer.stop()
        timer.start(10)
        timer.stop()
        timer.stop()
        sim.run()
        assert not timer.running


class TestPeakQueueDepth:
    def test_tracks_high_water_mark(self, sim):
        assert sim.peak_queue_depth == 0
        for i in range(5):
            sim.schedule(100 + i, lambda: None)
        assert sim.peak_queue_depth == 5
        sim.run()
        # Draining the queue does not lower the high-water mark.
        assert sim.peak_queue_depth == 5

    def test_counts_events_scheduled_during_run(self, sim):
        def fan_out():
            for i in range(10):
                sim.schedule(1 + i, lambda: None)

        sim.schedule(0, fan_out)
        sim.run()
        assert sim.peak_queue_depth == 10


class TestScheduleFire:
    def test_fires_like_schedule(self, sim):
        fired = []
        sim.schedule_fire(1000, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1000]

    def test_absolute_variant(self, sim):
        fired = []
        sim.schedule_fire_at(5_000, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5000]

    def test_interleaves_with_handle_events_in_schedule_order(self, sim):
        order = []
        sim.schedule(42, lambda: order.append("handle1"))
        sim.schedule_fire(42, lambda: order.append("fire"))
        sim.schedule(42, lambda: order.append("handle2"))
        sim.run()
        assert order == ["handle1", "fire", "handle2"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_fire(-1, lambda: None)

    def test_past_time_rejected(self, sim):
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_fire_at(50, lambda: None)

    def test_counts_in_events_processed(self, sim):
        sim.schedule_fire(1, lambda: None)
        sim.schedule(2, lambda: None)
        sim.run()
        assert sim.events_processed == 2

    def test_reserved_seq_preserves_tie_order(self, sim):
        """An event scheduled late with an early reserved seq fires in
        reservation order — the delivery pump's re-arm contract."""
        order = []
        early_seq = sim.reserve_seq()
        sim.schedule(42, lambda: order.append("between"))

        def arm_deferred():
            # At t=10, arm the t=42 event using the seq reserved first.
            sim.schedule_fire_at(42, lambda: order.append("reserved"), seq=early_seq)

        sim.schedule_fire(10, arm_deferred)
        sim.run()
        assert order == ["reserved", "between"]

    def test_step_fires_fire_events(self, sim):
        fired = []
        sim.schedule_fire(10, lambda: fired.append(sim.now))
        assert sim.step() is True
        assert fired == [10]


class TestLiveEvents:
    def test_counts_exclude_tombstones(self, sim):
        sim.schedule(10, lambda: None)
        doomed = sim.schedule(20, lambda: None)
        sim.schedule_fire(30, lambda: None)
        doomed.cancel()
        assert sim.pending_events == 3
        assert sim.live_events == 2

    def test_drained_queue_reports_zero(self, sim):
        handle = sim.schedule(10, lambda: None)
        handle.cancel()
        sim.run()
        assert sim.pending_events == 0
        assert sim.live_events == 0

    def test_cancel_after_fire_does_not_underreport(self, sim):
        handle = sim.schedule(10, lambda: None)
        sim.run()
        handle.cancel()  # too late: the event already fired
        sim.schedule(20, lambda: None)
        assert sim.live_events == 1
        assert sim.pending_events == 1

    def test_double_cancel_counts_once(self, sim):
        sim.schedule(10, lambda: None)
        doomed = sim.schedule(20, lambda: None)
        doomed.cancel()
        doomed.cancel()
        assert sim.live_events == 1


class TestTombstoneCompaction:
    def test_timer_rearm_churn_keeps_heap_bounded(self, sim):
        timer = Timer(sim, lambda: None)
        for _ in range(10_000):
            timer.start(1_000_000)
        # One live event; tombstones were compacted away along the way.
        assert sim.live_events == 1
        assert sim.pending_events < 200
        assert sim.peak_queue_depth < 200
        sim.run()
        assert sim.events_processed == 1

    def test_compaction_preserves_order_and_liveness(self, sim):
        fired = []
        handles = []
        for i in range(500):
            handles.append(sim.schedule(1000 + i, lambda i=i: fired.append(i)))
        for handle in handles[1::2]:  # cancel every odd event
            handle.cancel()
        sim.run()
        assert fired == list(range(0, 500, 2))

    def test_compaction_during_run_is_safe(self, sim):
        """Cancelling en masse from inside a callback compacts the heap
        the drain loop is actively iterating."""
        fired = []
        handles = [
            sim.schedule(2000 + i, lambda i=i: fired.append(i)) for i in range(300)
        ]

        def cancel_most():
            for handle in handles[10:]:
                handle.cancel()

        sim.schedule(1, cancel_most)
        sim.run()
        assert fired == list(range(10))
        assert sim.pending_events == 0


class TestProfilerDispatch:
    class _Recorder:
        def __init__(self):
            self.calls = []

        def run(self, callback):
            self.calls.append(callback)
            callback()

    def test_profiler_sees_every_dispatch(self, sim):
        profiler = self._Recorder()
        sim.set_profiler(profiler)
        fired = []
        sim.schedule(10, lambda: fired.append("a"))
        sim.schedule(20, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b"]
        assert len(profiler.calls) == 2

    def test_profiler_applies_to_step(self, sim):
        profiler = self._Recorder()
        sim.set_profiler(profiler)
        sim.schedule(10, lambda: None)
        assert sim.step()
        assert len(profiler.calls) == 1

    def test_cancelled_events_not_profiled(self, sim):
        profiler = self._Recorder()
        sim.set_profiler(profiler)
        handle = sim.schedule(10, lambda: None)
        handle.cancel()
        sim.schedule(20, lambda: None)
        sim.run()
        assert len(profiler.calls) == 1
