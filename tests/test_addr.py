"""Endpoints and flow keys."""

from repro.net.addr import Endpoint, FlowKey


class TestEndpoint:
    def test_fields(self):
        ep = Endpoint("hostA", 80)
        assert ep.host == "hostA"
        assert ep.port == 80

    def test_str(self):
        assert str(Endpoint("h", 8080)) == "h:8080"

    def test_equality_and_hash(self):
        assert Endpoint("h", 1) == Endpoint("h", 1)
        assert hash(Endpoint("h", 1)) == hash(Endpoint("h", 1))
        assert Endpoint("h", 1) != Endpoint("h", 2)


class TestFlowKey:
    def test_for_packet(self):
        key = FlowKey.for_packet(Endpoint("c", 1000), Endpoint("s", 80))
        assert key == FlowKey("c", 1000, "s", 80)

    def test_reversed_round_trip(self):
        key = FlowKey("c", 1000, "s", 80)
        assert key.reversed() == FlowKey("s", 80, "c", 1000)
        assert key.reversed().reversed() == key

    def test_src_dst_accessors(self):
        key = FlowKey("c", 1000, "s", 80)
        assert key.src == Endpoint("c", 1000)
        assert key.dst == Endpoint("s", 80)

    def test_usable_as_dict_key(self):
        table = {FlowKey("c", 1, "s", 2): "backend0"}
        assert table[FlowKey("c", 1, "s", 2)] == "backend0"

    def test_str(self):
        assert str(FlowKey("c", 1, "s", 2)) == "c:1->s:2"
