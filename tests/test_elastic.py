"""The elastic scenario: fleet scale events under live traffic."""

import pytest

from repro import units
from repro.harness.elastic import (
    ElasticConfig,
    elastic_point,
    race_table,
    run_elastic,
)

MINI = dict(
    duration=units.seconds(0.4),
    initial_backends=4,
    max_backends=12,
    clients=2,
    connections=8,
    maglev_size=127,
)


@pytest.fixture(scope="module")
def mini_run():
    return run_elastic(ElasticConfig(**MINI))


class TestElasticScenario:
    def test_config_validates(self):
        ElasticConfig(**MINI).scenario_config().validate()

    def test_diurnal_windows_are_staggered(self):
        config = ElasticConfig(**MINI)
        start0, stop0 = config.client_window(0)
        start1, stop1 = config.client_window(1)
        assert (start0, stop0) == (0, config.duration)
        assert 0 < start1 < config.duration // 2
        assert 3 * config.duration // 4 <= stop1 < config.duration

    def test_fleet_reaches_scheduled_peak(self, mini_run):
        assert mini_run.peak_capacity() == MINI["max_backends"]

    def test_no_affinity_violations_across_scale_events(self, mini_run):
        assert mini_run.violations == 0
        assert mini_run.new_flows > 0
        # Scale events actually happened — the invariant wasn't vacuous.
        assert mini_run.fleet.decisions

    def test_lifecycle_saw_full_ramp(self, mini_run):
        counts = mini_run.fleet.lifecycle.transition_counts()
        assert counts["new->in_service"] == MINI["initial_backends"]
        assert counts["provisioning->warming"] > 0
        assert counts["warming->in_service"] > 0

    def test_report_carries_the_headline_metrics(self, mini_run):
        report = mini_run.report()
        assert "scaling timeline:" in report
        assert "oscillations:" in report
        assert "affinity violations: 0" in report
        assert "time to stable fleet after peak:" in report
        assert "lifecycle transitions:" in report

    def test_stability_clock_is_non_negative(self, mini_run):
        assert mini_run.time_to_stable_ms() >= 0.0


class TestRaceRows:
    def test_point_row_shape(self):
        row = elastic_point(ElasticConfig(**MINI))
        assert row["strategy"] == "alpha"
        assert row["peak_capacity"] == MINI["max_backends"]
        assert row["violations"] == 0
        assert row["requests"] > 0
        assert row["time_to_stable_ms"] >= 0.0
        assert isinstance(row["grades"], dict)

    def test_race_table_ranks_stable_controllers_first(self):
        rows = [
            {
                "strategy": "wobbly",
                "peak_capacity": 12,
                "oscillations": 3,
                "violations": 0,
                "time_to_stable_ms": 10.0,
                "stale_holds": 0,
                "grades": {},
                "requests": 100,
            },
            {
                "strategy": "steady",
                "peak_capacity": 12,
                "oscillations": 0,
                "violations": 0,
                "time_to_stable_ms": 50.0,
                "stale_holds": 1,
                "grades": {"fresh": 9},
                "requests": 100,
            },
        ]
        table = race_table(rows)
        assert table.index("steady") < table.index("wobbly")
        assert "fleet race [elastic]:" in table
