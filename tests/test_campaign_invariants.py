"""Invariant registry + the 8 builtin checks, pass and fail paths.

One real (small) scenario run provides a context where every invariant
holds; each failure-path test then injects a synthetic bad event into
that run's telemetry, asserts the check fires with an actionable
message, and restores the state.  The recovery-bound liveness check is
driven with synthetic request records so both the "never recovered"
and "recovered late" verdicts are pinned without relying on a live
controller's timing.
"""

import pytest

from repro.app.client import RequestRecord
from repro.app.protocol import Op
from repro.campaign import (
    CampaignContext,
    available,
    evaluate,
    get_spec,
    register,
)
from repro.campaign.audit import CampaignAudit
from repro.campaign.registry import _REGISTRY
from repro.core.controller import ShiftEvent
from repro.errors import ConfigError
from repro.faults import DelayFault, ServerSlowdownFault
from repro.harness.config import PolicyName, ScenarioConfig
from repro.harness.runner import ScenarioResult, run_scenario
from repro.harness.scenario import build_scenario
from repro.resilience.breaker import BreakerState, BreakerTransition
from repro.resilience.config import ResilienceConfig
from repro.resilience.ladder import ControllerMode, ModeTransition
from repro.units import MILLISECONDS, SECONDS

MS = MILLISECONDS

BUILTINS = (
    "affinity-preserved",
    "breaker-legal",
    "conntrack-consistent",
    "hold-freeze",
    "ladder-legal",
    "no-dark-routing",
    "recovery-bound",
    "weight-conservation",
)


@pytest.fixture(scope="module")
def context():
    """One real run (alpha, resilience on, one delay fault) + audits."""
    config = ScenarioConfig(
        seed=11,
        duration=1 * SECONDS,
        n_servers=2,
        policy=PolicyName.FEEDBACK,
        faults=[
            DelayFault(
                start=300 * MS, duration=200 * MS, extra=800_000, node="server0"
            )
        ],
        resilience=ResilienceConfig(enabled=True, health_checks=True),
        warmup=100 * MS,
    )
    scenario = build_scenario(config)
    audit = CampaignAudit(scenario)
    result = run_scenario(config, scenario=scenario)
    return CampaignContext(
        result=result, audit=audit, recovery_bound=400 * MS
    )


class TestRegistry:
    def test_builtin_roster(self):
        assert tuple(available()) == BUILTINS

    def test_specs_carry_kind_and_summary(self):
        assert get_spec("recovery-bound").kind == "liveness"
        assert get_spec("weight-conservation").kind == "safety"
        assert all(get_spec(n).summary for n in available())

    def test_unknown_name_lists_roster(self):
        with pytest.raises(ConfigError, match="no-dark-routing"):
            get_spec("no-such-invariant")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="twice"):
            register("no-dark-routing")(lambda ctx: [])

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigError, match="kind"):
            register("bogus-kind-invariant", kind="vibes")

    def test_temporary_registration(self):
        @register("test-temp", summary="temp")
        def _check(ctx):
            return []

        try:
            assert "test-temp" in available()
        finally:
            _REGISTRY.pop("test-temp")


class TestKnownGoodRun:
    def test_every_builtin_passes(self, context):
        verdicts = evaluate(context)
        assert [v.name for v in verdicts] == list(BUILTINS)
        failed = {v.name: v.violations for v in verdicts if not v.passed}
        assert failed == {}

    def test_verdicts_land_in_scenario_extras(self, context):
        verdicts = evaluate(context)
        assert context.scenario.extras["invariants"] == verdicts

    def test_report_renders_invariant_summary(self, context):
        evaluate(context)
        report = context.result.report()
        assert "invariants: 8 checked, 0 violated" in report
        assert "weight-conservation" in report

    def test_name_selection(self, context):
        verdicts = evaluate(context, names=("affinity-preserved",))
        assert [v.name for v in verdicts] == ["affinity-preserved"]


class TestWeightConservation:
    def test_negative_weight_fires(self, context):
        updates = context.scenario.feedback.controller.updates
        updates.append(
            ShiftEvent(
                time=1,
                from_backend="server0",
                worst_estimate=0.0,
                best_estimate=0.0,
                weights_after={"server0": -0.5, "server1": 2.5},
            )
        )
        try:
            messages = get_spec("weight-conservation").check(context)
        finally:
            updates.pop()
        assert any("negative" in m for m in messages)

    def test_minted_weight_fires(self, context):
        updates = context.scenario.feedback.controller.updates
        updates.append(
            ShiftEvent(
                time=1,
                from_backend="server0",
                worst_estimate=0.0,
                best_estimate=0.0,
                weights_after={"server0": 2.0, "server1": 2.0},
            )
        )
        try:
            messages = get_spec("weight-conservation").check(context)
        finally:
            updates.pop()
        assert any("total weight" in m for m in messages)

    def test_floor_starvation_fires(self, context):
        updates = context.scenario.feedback.controller.updates
        updates.append(
            ShiftEvent(
                time=1,
                from_backend="server0",
                worst_estimate=0.0,
                best_estimate=0.0,
                weights_after={"server0": 0.001, "server1": 1.999},
            )
        )
        try:
            messages = get_spec("weight-conservation").check(context)
        finally:
            updates.pop()
        assert any("below floor" in m for m in messages)


class TestRoutingAndAffinity:
    def test_dark_routing_message_passes_through(self, context):
        context.audit.routing.violations.append(
            "t=1.000ms new flow f routed to server9 (unhealthy)"
        )
        try:
            messages = get_spec("no-dark-routing").check(context)
        finally:
            context.audit.routing.violations.pop()
        assert messages == ["t=1.000ms new flow f routed to server9 (unhealthy)"]

    def test_affinity_violation_fires(self, context):
        context.audit.affinity.violations.append(("flow", "server0", "server1"))
        try:
            messages = get_spec("affinity-preserved").check(context)
        finally:
            context.audit.affinity.violations.pop()
        assert messages == ["flow flow moved server0 -> server1"]


class TestConntrackConsistent:
    def test_count_drift_fires(self, context):
        counts = context.scenario.lb.conntrack._flow_counts
        counts["server0"] = counts.get("server0", 0) + 1
        try:
            messages = get_spec("conntrack-consistent").check(context)
        finally:
            counts["server0"] -= 1
            if counts["server0"] == 0:
                del counts["server0"]
        assert any("server0" in m and "cached count" in m for m in messages)


class TestLadderLegal:
    def test_self_loop_fires(self, context):
        transitions = context.scenario.feedback.ladder.transitions
        saved = list(transitions)
        transitions.append(
            ModeTransition(
                time=saved[-1].time + 1 if saved else 1,
                from_mode=ControllerMode.HOLD,
                to_mode=ControllerMode.HOLD,
                reason="test",
            )
        )
        try:
            messages = get_spec("ladder-legal").check(context)
        finally:
            transitions[:] = saved
        assert any("self-loop" in m for m in messages)

    def test_too_early_upgrade_fires(self, context):
        transitions = context.scenario.feedback.ladder.transitions
        saved = list(transitions)
        reentry_hold = context.config.resilience.ladder.reentry_hold
        transitions[:] = [
            ModeTransition(
                time=reentry_hold // 10,
                from_mode=ControllerMode.HOLD,
                to_mode=ControllerMode.FEEDBACK,
                reason="test",
            )
        ]
        try:
            messages = get_spec("ladder-legal").check(context)
        finally:
            transitions[:] = saved
        assert any("upgrade" in m and "reentry_hold" in m for m in messages)

    def test_broken_chain_fires(self, context):
        transitions = context.scenario.feedback.ladder.transitions
        saved = list(transitions)
        transitions[:] = [
            ModeTransition(
                time=1 * SECONDS,
                from_mode=ControllerMode.FALLBACK,
                to_mode=ControllerMode.HOLD,
                reason="test",
            )
        ]
        try:
            messages = get_spec("ladder-legal").check(context)
        finally:
            transitions[:] = saved
        assert any("ladder was in HOLD" in m for m in messages)


class TestBreakerLegal:
    def test_illegal_edge_fires(self, context):
        transitions = context.scenario.breakers.transitions
        saved = list(transitions)
        transitions.append(
            BreakerTransition(
                time=1,
                backend="server0",
                from_state=BreakerState.CLOSED,
                to_state=BreakerState.HALF_OPEN,
                reason="test",
            )
        )
        try:
            messages = get_spec("breaker-legal").check(context)
        finally:
            transitions[:] = saved
        assert any("illegal edge" in m for m in messages)

    def test_broken_chain_fires_without_fleet(self, context):
        transitions = context.scenario.breakers.transitions
        saved = list(transitions)
        transitions[:] = [
            BreakerTransition(
                time=1,
                backend="server0",
                from_state=BreakerState.CLOSED,
                to_state=BreakerState.OPEN,
                reason="test",
            ),
            BreakerTransition(
                time=2,
                backend="server0",
                from_state=BreakerState.CLOSED,
                to_state=BreakerState.OPEN,
                reason="test",
            ),
        ]
        try:
            messages = get_spec("breaker-legal").check(context)
        finally:
            transitions[:] = saved
        assert any("breaker was OPEN" in m for m in messages)


class TestHoldFreeze:
    def test_update_during_initial_hold_fires(self, context):
        updates = context.scenario.feedback.controller.updates
        transitions = context.scenario.feedback.ladder.transitions
        first = transitions[0].time if transitions else 10 * MS
        updates.append(
            ShiftEvent(
                time=max(1, first - 1),
                from_backend="server0",
                worst_estimate=0.0,
                best_estimate=0.0,
                weights_after={"server0": 1.0, "server1": 1.0},
            )
        )
        try:
            messages = get_spec("hold-freeze").check(context)
        finally:
            updates.pop()
        assert any("while ladder in HOLD" in m for m in messages)

    def test_update_at_transition_boundary_is_legal(self, context):
        transitions = context.scenario.feedback.ladder.transitions
        if not transitions:
            pytest.skip("run produced no ladder transitions")
        updates = context.scenario.feedback.controller.updates
        updates.append(
            ShiftEvent(
                time=transitions[0].time,
                from_backend="server0",
                worst_estimate=0.0,
                best_estimate=0.0,
                weights_after={"server0": 1.0, "server1": 1.0},
            )
        )
        try:
            messages = get_spec("hold-freeze").check(context)
        finally:
            updates.pop()
        assert messages == []

    def test_mode_change_relax_is_legal(self, context):
        updates = context.scenario.feedback.controller.updates
        updates.append(
            ShiftEvent(
                time=1,
                from_backend="server0",
                worst_estimate=0.0,
                best_estimate=0.0,
                weights_after={"server0": 1.0, "server1": 1.0},
                reason="mode-change",
            )
        )
        try:
            messages = get_spec("hold-freeze").check(context)
        finally:
            updates.pop()
        assert messages == []


class TestRecoveryBound:
    def _context(self, latency_after_ns, recovery_bound=500 * MS):
        """Synthetic records: 1ms baseline, then ``latency_after_ns(t)``
        from the 600ms fault onset on; fault window 600–900ms."""
        config = ScenarioConfig(
            seed=1,
            duration=2 * SECONDS,
            n_servers=2,
            faults=[
                ServerSlowdownFault(
                    start=600 * MS, duration=300 * MS, factor=8.0, node="server0"
                )
            ],
        )
        scenario = build_scenario(config)
        records = []
        for i in range(200):
            t = i * 10 * MS
            latency = (
                1 * MS if t < 600 * MS else latency_after_ns(t)
            )
            records.append(
                RequestRecord(
                    request_id=i,
                    op=Op.GET,
                    sent_at=t - latency,
                    completed_at=t,
                    latency=latency,
                    server="server0",
                    local_port=1,
                )
            )
        result = ScenarioResult(
            config=config, scenario=scenario, records=records, wall_events=0
        )
        return CampaignContext(
            result=result, audit=None, recovery_bound=recovery_bound
        )

    def test_never_recovering_fires(self):
        ctx = self._context(lambda t: 10 * MS)
        messages = get_spec("recovery-bound").check(ctx)
        assert any("never re-entered" in m for m in messages)

    def test_late_recovery_fires(self):
        # Back to baseline only at 1.7s: 800ms after the 900ms fault
        # end, past the 500ms bound.
        ctx = self._context(lambda t: 10 * MS if t < 1700 * MS else 1 * MS)
        messages = get_spec("recovery-bound").check(ctx)
        assert any("after the last fault" in m for m in messages)

    def test_prompt_recovery_passes(self):
        ctx = self._context(lambda t: 10 * MS if t < 1000 * MS else 1 * MS)
        assert get_spec("recovery-bound").check(ctx) == []

    def test_insufficient_runway_skips(self):
        ctx = self._context(lambda t: 10 * MS, recovery_bound=1200 * MS)
        assert get_spec("recovery-bound").check(ctx) == []


class TestObsCounters:
    def test_invariant_counters_appear_when_obs_enabled(self):
        from repro.obs import ObsConfig

        config = ScenarioConfig(
            seed=3,
            duration=400 * MS,
            n_servers=2,
            policy=PolicyName.FEEDBACK,
            obs=ObsConfig(enabled=True, tracing=False, profiling=False),
        )
        scenario = build_scenario(config)
        audit = CampaignAudit(scenario)
        result = run_scenario(config, scenario=scenario)
        evaluate(
            CampaignContext(result=result, audit=audit, recovery_bound=1)
        )
        registry = scenario.obs.registry
        checks = registry.get("repro_invariant_checks_total")
        assert checks is not None
        exported = registry.to_prometheus()
        assert 'repro_invariant_checks_total{invariant="hold-freeze"} 1' in exported
        # The family is registered even on a clean run; no violation
        # samples because nothing fired.
        assert "# TYPE repro_invariant_violations_total counter" in exported
        assert "repro_invariant_violations_total{" not in exported


class TestViolationEvents:
    """The structured twins of the rendered violation strings."""

    def test_clean_run_has_no_events(self, context):
        assert context.audit.routing.events == []

    def test_violation_emits_structured_twin(self, context):
        from repro.net.addr import FlowKey

        routing = context.audit.routing
        flow = FlowKey("client9", 40999, "vip", 11211)
        before = len(routing.violations)
        try:
            routing._tap(123 * MS, flow, "ghost-backend", packet=None)
            assert len(routing.violations) == before + 1
            assert len(routing.events) == before + 1
            event = routing.events[-1]
            assert event.time == 123 * MS
            assert event.invariant == "no-dark-routing"
            # The structured record carries the same rendered message,
            # so trace attribution and reports agree verbatim.
            assert event.message == routing.violations[-1]
            assert "ghost-backend" in event.message
        finally:
            routing.violations.pop()
            routing.events.pop()
            routing._seen.discard(flow)
            routing.checked -= 1
