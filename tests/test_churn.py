"""Backend churn: scale-out and drain (§2.5)."""

import pytest

from repro.harness.churn import ChurnConfig, run_churn
from repro.units import MILLISECONDS


_result = None


def result():
    global _result
    if _result is None:
        from repro.app.client import MemtierConfig

        # Short-lived connections so plenty of *new* flows form in each
        # phase of the small test run (the bench uses long-lived ones to
        # exercise draining).
        _result = run_churn(
            ChurnConfig(
                duration=900 * MILLISECONDS,
                memtier=MemtierConfig(
                    connections=4, pipeline=2, requests_per_connection=150
                ),
            )
        )
    return _result


class TestChurn:
    def test_no_affinity_violations_across_membership_changes(self):
        assert result().affinity_violations == []

    def test_newcomer_absent_before_scale_out(self):
        assert "server2" not in result().new_flows_before

    def test_newcomer_gets_fair_share_after_scale_out(self):
        share = result().newcomer_share_after_scale_out()
        assert 0.15 < share < 0.55  # fair share is 1/3

    def test_drained_backend_gets_no_new_flows(self):
        assert "server0" not in result().new_flows_after_drain

    def test_drained_backend_finishes_in_flight_work(self):
        # Flows pinned to server0 when it left the pool keep flowing to
        # it (the dataplane's draining counter), never re-routed.
        if result().pinned_at_drain:
            assert result().scenario.lb.stats.draining_packets > 0
        else:  # no connection happened to be on server0 at that instant
            assert result().scenario.lb.stats.draining_packets == 0

    def test_remaining_backends_split_new_flows_after_drain(self):
        counts = result().new_flows_after_drain
        assert set(counts) <= {"server1", "server2"}
        assert len(counts) == 2
