"""Pacer slot allocation."""

import pytest

from repro.transport.pacing import Pacer
from repro.units import SECONDS


class TestPacer:
    def test_first_send_immediate(self):
        pacer = Pacer(rate_bps=8_000)
        assert pacer.allocate(now=0, size_bytes=100) == 0

    def test_consecutive_sends_spaced_by_rate(self):
        pacer = Pacer(rate_bps=8_000)  # 1000 bytes/s -> 1 byte per ms
        first = pacer.allocate(0, 100)
        second = pacer.allocate(0, 100)
        # 100 bytes at 1000 B/s = 0.1 s gap.
        assert second - first == SECONDS // 10

    def test_idle_time_not_banked(self):
        pacer = Pacer(rate_bps=8_000)
        pacer.allocate(0, 100)
        # Long after the gap expired, the next send goes out at `now`.
        late = pacer.allocate(10 * SECONDS, 100)
        assert late == 10 * SECONDS

    def test_reset(self):
        pacer = Pacer(rate_bps=8)
        pacer.allocate(0, 1000)
        pacer.reset()
        assert pacer.allocate(0, 1) == 0

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            Pacer(rate_bps=0)

    def test_rate_property(self):
        assert Pacer(rate_bps=123).rate_bps == 123
