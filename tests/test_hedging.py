"""Hedging (request-duplication) client."""

import pytest

from repro.app.hedging import HedgingClient, HedgingConfig
from repro.app.server import ServerApp, ServerConfig
from repro.app.servicetime import Bimodal, Deterministic
from repro.net.addr import Endpoint
from repro.sim.random import RandomStreams
from repro.units import MICROSECONDS, MILLISECONDS, SECONDS


def attach_server(pair, service_model=None, workers=4):
    streams = RandomStreams(0)
    config = ServerConfig(
        port=7000,
        workers=workers,
        service_model=service_model or Deterministic(50 * MICROSECONDS),
    )
    return ServerApp(pair.server, config, streams.get("svc"))


def make_client(pair, **overrides):
    defaults = dict(streams=2, hedge_timeout=1 * MILLISECONDS)
    defaults.update(overrides)
    config = HedgingConfig(**defaults)
    return HedgingClient(
        pair.client, Endpoint("server", 7000), config, RandomStreams(3).get("wl")
    )


class TestFastServer:
    def test_no_hedges_when_responses_beat_timeout(self, sim, pair):
        attach_server(pair)  # 50us service << 1ms hedge timeout
        client = make_client(pair)
        client.start()
        sim.run_until(100 * MILLISECONDS)
        client.stop()
        assert client.records
        assert client.stats.hedged == 0
        assert client.stats.primary_wins == len(client.records)
        assert client.hedge_rate == 0.0

    def test_each_record_completed_once(self, sim, pair):
        attach_server(pair)
        client = make_client(pair)
        client.start()
        sim.run_until(100 * MILLISECONDS)
        ids = [r.request_id for r in client.records]
        assert len(ids) == len(set(ids))


class TestSlowModes:
    def test_hedges_fire_for_slow_requests(self, sim, pair):
        # 30% of requests take 5 ms — beyond the 1 ms hedge timeout.
        attach_server(
            pair,
            service_model=Bimodal(
                fast_ns=50 * MICROSECONDS,
                slow_ns=5 * MILLISECONDS,
                slow_prob=0.3,
            ),
        )
        client = make_client(pair)
        client.start()
        sim.run_until(500 * MILLISECONDS)
        client.stop()
        assert client.stats.hedged > 0
        assert 0.1 < client.hedge_rate < 0.6

    def test_backup_can_win(self, sim, pair):
        attach_server(
            pair,
            service_model=Bimodal(
                fast_ns=50 * MICROSECONDS,
                slow_ns=20 * MILLISECONDS,
                slow_prob=0.5,
            ),
        )
        client = make_client(pair)
        client.start()
        sim.run_until(500 * MILLISECONDS)
        client.stop()
        assert client.stats.backup_wins > 0

    def test_hedging_cuts_the_tail_vs_no_hedging(self, sim, pair):
        """The technique works — at the cost the paper calls out."""
        from repro.telemetry.quantiles import exact_quantile
        from tests.conftest import PairTopology
        from repro.sim.engine import Simulator

        model = Bimodal(
            fast_ns=50 * MICROSECONDS, slow_ns=10 * MILLISECONDS, slow_prob=0.2
        )

        def run(hedge_timeout):
            sim2 = Simulator()
            pair2 = PairTopology(sim2)
            attach_server(pair2, service_model=model)
            client = make_client(pair2, hedge_timeout=hedge_timeout)
            client.start()
            sim2.run_until(1 * SECONDS)
            client.stop()
            return exact_quantile(client.latencies(), 0.9), client

        hedged_p90, hedged = run(500 * MICROSECONDS)
        unhedged_p90, _ = run(10 * SECONDS // 10)  # timeout ≈ never fires
        assert hedged_p90 < unhedged_p90 / 2
        # But duplicated work is real: backup responses that lost count
        # as waste (or the duplicate won and the primary's was wasted).
        assert hedged.stats.wasted_responses > 0

    def test_duplicate_adds_timeout_to_latency(self, sim, pair):
        """§2.2: a duplicated request pays hedge_timeout + another trip."""
        attach_server(
            pair,
            service_model=Bimodal(
                fast_ns=50 * MICROSECONDS,
                slow_ns=50 * MILLISECONDS,
                slow_prob=0.5,
            ),
        )
        client = make_client(pair, hedge_timeout=2 * MILLISECONDS)
        client.start()
        sim.run_until(500 * MILLISECONDS)
        client.stop()
        hedged_latencies = [
            r.latency
            for r in client.records
            if r.latency > 2 * MILLISECONDS and r.latency < 50 * MILLISECONDS
        ]
        # Winners that needed a duplicate still paid >= the timeout.
        assert hedged_latencies
        assert min(hedged_latencies) >= 2 * MILLISECONDS


class TestValidation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            HedgingConfig(streams=0).validate()
        with pytest.raises(ValueError):
            HedgingConfig(hedge_timeout=0).validate()
        with pytest.raises(ValueError):
            HedgingConfig(requests_per_stream=0).validate()
