"""Two-tier servers and the dependency scenario (open question #3)."""

import pytest

from repro.app.client import MemtierConfig
from repro.errors import ConfigError
from repro.harness.tiered import TieredScenarioConfig, TieredResult, run_tiered
from repro.telemetry.quantiles import exact_quantile
from repro.units import MICROSECONDS, MILLISECONDS, SECONDS


def light_memtier():
    return MemtierConfig(connections=2, pipeline=2, requests_per_connection=100)


def run(fault, duration=600 * MILLISECONDS):
    config = TieredScenarioConfig(
        duration=duration, fault=fault, memtier=light_memtier()
    )
    return run_scenario_cached(config)


_cache = {}


def run_scenario_cached(config) -> TieredResult:
    key = (config.fault, config.duration)
    if key not in _cache:
        _cache[key] = run_tiered(config)
    return _cache[key]


class TestPlumbing:
    def test_requests_complete_through_both_tiers(self):
        result = run("none")
        assert len(result.client.records) > 100
        assert result.dependency.stats.requests > 100
        for frontend in result.frontends:
            assert frontend.stats.dependency_calls == frontend.stats.requests

    def test_latency_includes_dependency_round_trip(self):
        result = run("none")
        latencies = result.latencies()
        median = exact_quantile(latencies, 0.5)
        # client<->lb<->frontend RTT ~100us + frontend<->dep RTT ~40us
        # + service times: strictly more than the single-tier path.
        assert median > 150 * MICROSECONDS

    def test_dependency_latency_recorded(self):
        result = run("none")
        for frontend in result.frontends:
            assert frontend.stats.dependency_latencies
            assert min(frontend.stats.dependency_latencies) > 40 * MICROSECONDS

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            TieredScenarioConfig(fault="cosmic-rays").validate()
        with pytest.raises(ConfigError):
            TieredScenarioConfig(n_frontends=0).validate()
        with pytest.raises(ConfigError):
            TieredScenarioConfig(duration=0).validate()


class TestFrontendFault:
    """A genuinely slow frontend: shifting helps."""

    def test_estimates_separate(self):
        result = run("frontend")
        gap = result.estimate_gap()
        assert gap is not None
        assert gap > 500 * MICROSECONDS

    def test_traffic_drains_from_slow_frontend(self):
        result = run("frontend")
        weights = result.pool.weights()
        assert weights["frontend0"] < weights["frontend1"] / 3


class TestDependencyFault:
    """A slow shared dependency: both frontends inflate together."""

    def test_estimates_inflate_together(self):
        result = run("dependency")
        gap = result.estimate_gap()
        fault = result.config.fault_extra
        # The worst-best gap stays well under the fault size: the fault
        # is common-mode, not attributable to one backend.
        assert gap is not None
        assert gap < fault / 2

    def test_tail_inflates_despite_any_shifting(self):
        result = run("dependency")
        config = result.config
        pre = [
            r.latency
            for r in result.client.records
            if r.completed_at < config.fault_at
        ]
        post = [
            r.latency
            for r in result.client.records
            if r.completed_at > config.fault_at + config.duration // 8
        ]
        assert exact_quantile(post, 0.95) > exact_quantile(pre, 0.95) + result.config.fault_extra // 2

    def test_every_frontend_sees_dependency_slowdown(self):
        result = run("dependency")
        config = result.config
        for frontend in result.frontends:
            late = frontend.stats.dependency_latencies[-20:]
            assert exact_quantile([float(v) for v in late], 0.5) > config.fault_extra
