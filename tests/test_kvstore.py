"""Key-value store with LRU eviction."""

import pytest

from repro.app.kvstore import KeyValueStore


class TestBasics:
    def test_get_miss(self):
        store = KeyValueStore()
        assert store.get("nope") is None
        assert store.stats.misses == 1

    def test_set_then_get(self):
        store = KeyValueStore()
        store.set("k", 100)
        assert store.get("k") == 100
        assert store.stats.hits == 1

    def test_overwrite_updates_size(self):
        store = KeyValueStore()
        store.set("k", 100)
        store.set("k", 250)
        assert store.get("k") == 250
        assert store.used_bytes == 250
        assert len(store) == 1

    def test_delete(self):
        store = KeyValueStore()
        store.set("k", 10)
        assert store.delete("k")
        assert not store.delete("k")
        assert store.used_bytes == 0

    def test_value_size_validation(self):
        with pytest.raises(ValueError):
            KeyValueStore().set("k", 0)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            KeyValueStore(capacity_bytes=0)


class TestLru:
    def test_eviction_order_is_lru(self):
        store = KeyValueStore(capacity_bytes=100)
        store.set("a", 40)
        store.set("b", 40)
        store.get("a")          # a is now most recent
        store.set("c", 40)      # evicts b
        assert store.get("b") is None
        assert store.get("a") == 40
        assert store.get("c") == 40
        assert store.stats.evictions == 1

    def test_used_bytes_respects_capacity(self):
        store = KeyValueStore(capacity_bytes=100)
        for i in range(10):
            store.set("k%d" % i, 30)
        assert store.used_bytes <= 100

    def test_single_oversized_value_retained(self):
        # A value bigger than capacity stays (never evict what was just set).
        store = KeyValueStore(capacity_bytes=50)
        store.set("big", 80)
        assert store.get("big") == 80

    def test_unbounded_without_capacity(self):
        store = KeyValueStore()
        for i in range(1000):
            store.set("k%d" % i, 1000)
        assert len(store) == 1000
        assert store.stats.evictions == 0


class TestStats:
    def test_counters(self):
        store = KeyValueStore()
        store.set("a", 1)
        store.get("a")
        store.get("b")
        assert store.stats.sets == 1
        assert store.stats.gets == 2
        assert store.stats.hits == 1
        assert store.stats.misses == 1
