"""Injector: binding, composition, deterministic revert, crash semantics.

These tests drive the simulator stepwise (``run_until``) around fault
window edges and assert on the underlying knobs — pipe delay/loss/
bandwidth, server multiplier/pause, pool health — rather than on
emergent latency, so each composition law is pinned exactly.
"""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    CrashRestartFault,
    DelayFault,
    FaultSchedule,
    Injector,
    JitterFault,
    LossFault,
    ServerPauseFault,
    ServerSlowdownFault,
    ThrottleFault,
)
from repro.harness.config import ScenarioConfig
from repro.harness.scenario import build_scenario
from repro.units import MILLISECONDS, SECONDS


def built(*faults, **kwargs):
    defaults = dict(duration=1 * SECONDS, n_servers=2, faults=list(faults))
    defaults.update(kwargs)
    return build_scenario(ScenarioConfig(**defaults))


MS = MILLISECONDS


class TestDelayComposition:
    def test_overlapping_delays_add_and_revert_to_baseline(self):
        scenario = built(
            DelayFault(start=100 * MS, duration=300 * MS, extra=10_000, node="server0"),
            DelayFault(start=200 * MS, duration=100 * MS, extra=5_000, node="server0"),
        )
        pipe = scenario.network.pipe("lb", "server0")
        # A pre-existing extra delay is the baseline the chaos plane
        # must restore, no matter the expiry order.
        pipe.set_extra_delay(77)
        sim = scenario.sim

        sim.run_until(150 * MS)
        assert pipe.extra_delay == 77 + 10_000
        sim.run_until(250 * MS)
        assert pipe.extra_delay == 77 + 15_000
        sim.run_until(350 * MS)
        assert pipe.extra_delay == 77 + 10_000
        sim.run_until(450 * MS)
        assert pipe.extra_delay == 77

    def test_other_servers_untouched(self):
        scenario = built(
            DelayFault(start=100 * MS, duration=100 * MS, extra=9_999, node="server0")
        )
        scenario.sim.run_until(150 * MS)
        assert scenario.network.pipe("lb", "server1").extra_delay == 0

    def test_glob_hits_every_matching_pipe(self):
        scenario = built(
            DelayFault(start=100 * MS, extra=1_234, node="server*")
        )
        scenario.sim.run_until(150 * MS)
        for name in ("server0", "server1"):
            assert scenario.network.pipe("lb", name).extra_delay == 1_234


class TestLossComposition:
    def test_overlapping_losses_compose_as_independent_segments(self):
        scenario = built(
            LossFault(start=100 * MS, duration=300 * MS, prob=0.1, node="server0"),
            LossFault(start=200 * MS, duration=100 * MS, prob=0.2, node="server0"),
        )
        pipe = scenario.network.pipe("lb", "server0")
        sim = scenario.sim

        sim.run_until(150 * MS)
        assert pipe.drop_prob == pytest.approx(0.1)
        sim.run_until(250 * MS)
        assert pipe.drop_prob == pytest.approx(1 - 0.9 * 0.8)
        sim.run_until(350 * MS)
        assert pipe.drop_prob == pytest.approx(0.1)
        sim.run_until(450 * MS)
        assert pipe.drop_prob == 0.0

    def test_losses_counted_separately_from_queue_drops(self):
        config = ScenarioConfig(
            duration=500 * MS,
            n_servers=2,
            faults=[LossFault(start=0, prob=0.5, node="server0")],
        )
        from repro.harness.runner import run_scenario

        result = run_scenario(config)
        pipe = result.scenario.network.pipe("lb", "server0")
        assert pipe.stats.packets_dropped_loss > 0
        # Compat: the aggregate property still sums both counters.
        assert pipe.stats.packets_dropped == (
            pipe.stats.packets_dropped_queue + pipe.stats.packets_dropped_loss
        )
        queue_drops, loss_drops = result.drop_counts()
        assert loss_drops == pipe.stats.packets_dropped_loss


class TestThrottleAndJitter:
    def test_throttle_takes_tightest_cap_and_restores_base(self):
        scenario = built(
            ThrottleFault(
                start=100 * MS, duration=300 * MS,
                bandwidth_bps=2_000_000_000, node="server0",
            ),
            ThrottleFault(
                start=200 * MS, duration=100 * MS,
                bandwidth_bps=500_000_000, node="server0",
            ),
        )
        pipe = scenario.network.pipe("lb", "server0")
        base = pipe.bandwidth_bps
        sim = scenario.sim

        sim.run_until(150 * MS)
        assert pipe.effective_bandwidth_bps == 2_000_000_000
        sim.run_until(250 * MS)
        assert pipe.effective_bandwidth_bps == 500_000_000
        sim.run_until(350 * MS)
        assert pipe.effective_bandwidth_bps == 2_000_000_000
        sim.run_until(450 * MS)
        assert pipe.effective_bandwidth_bps == base

    def test_throttle_never_exceeds_configured_bandwidth(self):
        scenario = built(
            ThrottleFault(
                start=100 * MS, bandwidth_bps=10**15, node="server0"
            )
        )
        pipe = scenario.network.pipe("lb", "server0")
        scenario.sim.run_until(150 * MS)
        assert pipe.effective_bandwidth_bps == pipe.bandwidth_bps

    def test_jitter_installed_and_cleared(self):
        scenario = built(
            JitterFault(start=100 * MS, duration=100 * MS, amplitude=5_000, node="server0")
        )
        pipe = scenario.network.pipe("lb", "server0")
        sim = scenario.sim
        assert pipe.extra_jitter is None
        sim.run_until(150 * MS)
        draw = pipe.extra_jitter
        assert draw is not None
        assert 0 <= draw() < 5_000
        sim.run_until(250 * MS)
        assert pipe.extra_jitter is None


class TestServerFaults:
    def test_slowdowns_multiply_and_revert(self):
        scenario = built(
            ServerSlowdownFault(start=100 * MS, duration=300 * MS, factor=2.0, node="server0"),
            ServerSlowdownFault(start=200 * MS, duration=100 * MS, factor=3.0, node="server0"),
        )
        server = scenario.servers[0]
        sim = scenario.sim

        sim.run_until(150 * MS)
        assert server.service_multiplier == pytest.approx(2.0)
        sim.run_until(250 * MS)
        assert server.service_multiplier == pytest.approx(6.0)
        sim.run_until(350 * MS)
        assert server.service_multiplier == pytest.approx(2.0)
        sim.run_until(450 * MS)
        assert server.service_multiplier == pytest.approx(1.0)

    def test_pause_is_reference_counted(self):
        scenario = built(
            ServerPauseFault(start=100 * MS, duration=300 * MS, node="server0"),
            ServerPauseFault(start=200 * MS, duration=100 * MS, node="server0"),
        )
        server = scenario.servers[0]
        sim = scenario.sim

        sim.run_until(150 * MS)
        assert server.paused
        sim.run_until(350 * MS)
        # First window still open after the nested one ended.
        assert server.paused
        sim.run_until(450 * MS)
        assert not server.paused


class TestCrashRestart:
    def test_crash_window_toggles_pool_health(self):
        scenario = built(
            CrashRestartFault(start=100 * MS, duration=200 * MS, node="server0")
        )
        backend = scenario.pool.get("server0")
        sim = scenario.sim

        assert backend.healthy
        sim.run_until(150 * MS)
        assert not backend.healthy
        sim.run_until(350 * MS)
        assert backend.healthy

    def test_crash_on_already_unhealthy_backend_is_noop(self):
        scenario = built(
            CrashRestartFault(start=100 * MS, duration=200 * MS, node="server0")
        )
        # Some other subsystem (health checks, churn) took it down first.
        scenario.pool.set_healthy("server0", False)
        backend = scenario.pool.get("server0")
        sim = scenario.sim

        sim.run_until(150 * MS)
        assert not backend.healthy
        # The restart must not revive a backend the crash didn't kill.
        sim.run_until(350 * MS)
        assert not backend.healthy

    def test_overlapping_crashes_release_on_last_revert(self):
        scenario = built(
            CrashRestartFault(start=100 * MS, duration=300 * MS, node="server0"),
            CrashRestartFault(start=200 * MS, duration=100 * MS, node="server0"),
        )
        backend = scenario.pool.get("server0")
        sim = scenario.sim

        sim.run_until(350 * MS)
        assert not backend.healthy  # outer window still open
        sim.run_until(450 * MS)
        assert backend.healthy


class TestRecurrence:
    def test_recurring_fault_cancels_cleanly_at_run_end(self):
        # Windows at 100, 400, 700, 1000(dropped: >= horizon)... and the
        # 700 ms window's revert (900 ms) is the last transition.
        config = ScenarioConfig(
            duration=1 * SECONDS,
            n_servers=2,
            faults=[
                ServerSlowdownFault(
                    start=100 * MS, duration=200 * MS, period=300 * MS,
                    factor=4.0, node="server0",
                )
            ],
        )
        from repro.harness.runner import run_scenario

        result = run_scenario(config)
        injector = result.scenario.injector
        applies = [e for e in injector.events if e.action == "apply"]
        reverts = [e for e in injector.events if e.action == "revert"]
        assert len(applies) == 3
        assert len(reverts) == 3
        assert result.scenario.servers[0].service_multiplier == 1.0

    def test_mid_window_run_end_leaves_no_dangling_state(self):
        # The last window (start 900 ms, end 1.1 s) is still open at the
        # horizon; its revert simply never fires.
        config = ScenarioConfig(
            duration=1 * SECONDS,
            n_servers=2,
            faults=[
                DelayFault(
                    start=300 * MS, duration=200 * MS, period=300 * MS,
                    extra=1 * MS, node="server0",
                )
            ],
        )
        from repro.harness.runner import run_scenario

        result = run_scenario(config)
        injector = result.scenario.injector
        applies = sum(1 for e in injector.events if e.action == "apply")
        reverts = sum(1 for e in injector.events if e.action == "revert")
        assert applies == 3 and reverts == 2  # last revert is past the horizon


class TestResolution:
    def test_unmatched_pipe_fault_rejected_at_build(self):
        with pytest.raises(ConfigError, match="matches no"):
            built(DelayFault(start=100 * MS, node="nonexistent*"))

    def test_unmatched_server_fault_rejected_at_build(self):
        with pytest.raises(ConfigError, match="matches no"):
            built(ServerSlowdownFault(start=100 * MS, node="client0"))

    def test_legacy_unknown_injection_target_still_rejected(self):
        from repro.harness.config import DelayInjection

        with pytest.deprecated_call():
            injection = DelayInjection(at=100 * MS, server="serverX", extra=1)
        config = ScenarioConfig(duration=1 * SECONDS, injections=[injection])
        with pytest.raises(ConfigError):
            build_scenario(config)

    def test_crash_without_pool_rejected(self):
        scenario = built()
        injector = Injector(
            scenario.sim, scenario.network, server_names=["server0"]
        )
        with pytest.raises(ConfigError, match="pool"):
            injector.arm(
                FaultSchedule([CrashRestartFault(start=1, node="server0")]),
                1 * SECONDS,
            )

    def test_loss_without_rng_rejected(self):
        scenario = built()
        injector = Injector(
            scenario.sim, scenario.network, server_names=["server0"]
        )
        with pytest.raises(ConfigError, match="RNG"):
            injector.arm(
                FaultSchedule([LossFault(start=1, node="server0")]),
                1 * SECONDS,
            )


class TestLegacyEquivalence:
    def test_injection_and_fault_runs_are_identical(self):
        from repro.harness.config import DelayInjection
        from repro.harness.runner import run_scenario

        base = dict(duration=500 * MS, n_servers=2, seed=42)
        with pytest.deprecated_call():
            injection = DelayInjection(at=250 * MS, server="server0", extra=1 * MS)
        legacy = run_scenario(ScenarioConfig(injections=[injection], **base))
        declarative = run_scenario(
            ScenarioConfig(
                faults=[
                    DelayFault(start=250 * MS, extra=1 * MS, node="server0")
                ],
                **base,
            )
        )
        assert [r.latency for r in legacy.records] == [
            r.latency for r in declarative.records
        ]


class TestEventsAndViews:
    def test_events_record_each_transition_with_target(self):
        scenario = built(
            DelayFault(start=100 * MS, duration=100 * MS, extra=1 * MS, node="server0")
        )
        scenario.sim.run_until(300 * MS)
        injector = scenario.injector
        assert [(e.action, e.target) for e in injector.events] == [
            ("apply", "lb->server0"),
            ("revert", "lb->server0"),
        ]
        assert all(e.kind == "delay" for e in injector.events)
        assert "delay" in injector.timeline()

    def test_active_at_reflects_window_coverage(self):
        scenario = built(
            DelayFault(start=100 * MS, duration=100 * MS, extra=1 * MS, node="server0")
        )
        injector = scenario.injector
        assert injector.active_at(50 * MS) == []
        assert len(injector.active_at(150 * MS)) == 1
        assert injector.active_at(250 * MS) == []
