"""Failure injection: does the measurement plane survive packet loss?

Retransmissions perturb exactly what Algorithms 1–2 consume — packet
arrival gaps at the LB.  These tests run the full feedback stack over
shallow-queue (lossy) links and assert the system stays sane: requests
still complete, `T_LB` samples keep flowing, estimates stay positive and
bounded, and the controller still drains a genuinely slow server.
"""

import pytest

from repro.app.protocol import Op
from repro.faults import DelayFault
from repro.harness.config import (
    NetworkParams,
    PolicyName,
    ScenarioConfig,
)
from repro.harness.runner import run_scenario
from repro.units import MILLISECONDS, SECONDS


def lossy_config(**kwargs):
    # 200 Mb/s links with 8-packet queues: connection bursts overflow.
    defaults = dict(
        seed=37,
        duration=800 * MILLISECONDS,
        policy=PolicyName.FEEDBACK,
        network=NetworkParams(
            bandwidth_bps=200_000_000,
            queue_capacity=8,
        ),
        warmup=100 * MILLISECONDS,
    )
    defaults.update(kwargs)
    return ScenarioConfig(**defaults)


@pytest.fixture(scope="module")
def lossy_result():
    return run_scenario(lossy_config())


class TestUnderLoss:
    def test_drops_actually_happened(self, lossy_result):
        network = lossy_result.scenario.network
        drops = sum(
            network.pipe(src, dst).stats.packets_dropped
            for src, dst in (
                ("client0", "lb"),
                ("lb", "server0"),
                ("lb", "server1"),
                ("server0", "client0"),
                ("server1", "client0"),
            )
        )
        assert drops > 0, "scenario not lossy; tighten the queues"

    def test_requests_still_complete(self, lossy_result):
        assert len(lossy_result.records) > 500

    def test_measurement_keeps_producing_samples(self, lossy_result):
        feedback = lossy_result.scenario.feedback
        assert feedback is not None
        assert feedback.sample_count > 50

    def test_estimates_positive_and_bounded(self, lossy_result):
        feedback = lossy_result.scenario.feedback
        for estimate in feedback.estimator.snapshot():
            assert estimate.value > 0
            # Bounded by the worst plausible path: RTO-driven recovery
            # tops out well under a second here.
            assert estimate.value < 1 * SECONDS

    def test_no_duplicate_request_completions(self, lossy_result):
        ids = [r.request_id for r in lossy_result.records]
        assert len(ids) == len(set(ids))


class TestRetransmissionCensoring:
    def test_censoring_drops_loss_tainted_samples(self):
        config = lossy_config()
        config.feedback.censor_retransmissions = True
        config.feedback.control = False
        result = run_scenario(config)
        feedback = result.scenario.feedback
        assert feedback.censored_samples > 0
        assert feedback.sample_count > 50  # plenty survives

    def test_censoring_lowers_tail_of_samples(self):
        """Censored sample stream should carry less RTO-scale noise."""
        from repro.telemetry.quantiles import exact_quantile

        def samples(censor):
            config = lossy_config()
            config.feedback.censor_retransmissions = censor
            config.feedback.control = False
            result = run_scenario(config)
            return [float(s.t_lb) for s in result.scenario.feedback.samples]

        plain = samples(False)
        censored = samples(True)
        assert exact_quantile(censored, 0.99) <= exact_quantile(plain, 0.99)

    def test_censoring_off_by_default(self):
        from repro.core.feedback import FeedbackConfig

        assert FeedbackConfig().censor_retransmissions is False


class TestControlUnderLoss:
    def test_controller_still_drains_slow_server(self):
        # Milder loss than the measurement-sanity fixture: with heavy
        # loss, RTO-scale recovery stalls (tens of ms) dominate a 2 ms
        # fault and the ranking inverts — a real limitation worth its
        # own line in EXPERIMENTS.md, but not what this test checks.
        config = lossy_config(
            duration=1200 * MILLISECONDS,
            network=NetworkParams(
                bandwidth_bps=200_000_000,
                queue_capacity=48,
            ),
            faults=[
                DelayFault(
                    start=600 * MILLISECONDS,
                    extra=2 * MILLISECONDS,
                    node="server0",
                )
            ],
        )
        result = run_scenario(config)
        weights = result.scenario.pool.weights()
        assert weights["server0"] < weights["server1"]
        late = [
            r
            for r in result.records
            if r.completed_at > 900 * MILLISECONDS
        ]
        assert late
        share = sum(1 for r in late if r.server == "server0") / len(late)
        assert share < 0.35
