"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.policy == "feedback"
        assert args.servers == 2

    def test_ablation_choices(self):
        args = build_parser().parse_args(["ablation", "epoch"])
        assert args.sweep == "epoch"
        assert args.jobs == 1
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation", "nonsense"])

    def test_ablation_includes_multilb_and_churn(self):
        for sweep in ("multilb", "churn"):
            args = build_parser().parse_args(["ablation", sweep, "--jobs", "2"])
            assert args.sweep == sweep
            assert args.jobs == 2

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.spec is None
        assert args.jobs == 1
        assert args.store == ".sweep-store"
        assert not args.no_cache and not args.resume

    def test_sweep_axes_are_repeatable(self):
        args = build_parser().parse_args(
            ["sweep", "--grid", "seed=1,2", "--grid", "n_servers=2,3",
             "--zip", "memtier.pipeline=1,2", "--seeds", "5,6"]
        )
        assert args.grid == ["seed=1,2", "n_servers=2,3"]
        assert args.zip_axes == ["memtier.pipeline=1,2"]
        assert args.seeds == "5,6"


class TestCommands:
    def test_run_prints_report(self, capsys):
        code = main(["--duration", "0.2", "run"])
        assert code == 0
        out = capsys.readouterr().out
        assert "completed requests" in out

    def test_fig2b_prints_tracking(self, capsys):
        code = main(["--duration", "0.5", "fig2b"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pre-step" in out and "post-step" in out

    def test_error_identity_table(self, capsys):
        code = main(["--duration", "0.3", "error"])
        assert code == 0
        out = capsys.readouterr().out
        assert "T_LB" in out

    def test_reaction(self, capsys):
        code = main(["--duration", "1.2", "reaction"])
        assert code == 0
        assert "first shift" in capsys.readouterr().out


class TestSweepCommand:
    def test_inline_grid_runs_and_caches(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        argv = [
            "--duration", "0.1",
            "sweep", "--grid", "seed=1,2", "--name", "smoke",
            "--store", store,
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "sweep smoke: 2 points, 0 cache hits, 2 simulated" in out
        assert "seed=1" in out and "seed=2" in out
        # Unchanged rerun: everything is a cache hit.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "sweep smoke: 2 points, 2 cache hits, 0 simulated" in out

    def test_spec_file_runs(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(
            '{"name": "filed", "base": {"duration": "100ms"},'
            ' "grid": {"seed": [1, 2]}}'
        )
        code = main(
            ["sweep", str(spec), "--store", str(tmp_path / "store")]
        )
        assert code == 0
        assert "sweep filed: 2 points" in capsys.readouterr().out

    def test_spec_file_and_inline_axes_conflict(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text("{}")
        code = main(
            ["sweep", str(spec), "--grid", "seed=1,2",
             "--store", str(tmp_path / "store")]
        )
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_resume_requires_existing_store(self, tmp_path, capsys):
        code = main(
            ["sweep", "--grid", "seed=1",
             "--store", str(tmp_path / "missing"), "--resume"]
        )
        assert code == 2
        assert "nothing to resume" in capsys.readouterr().err

    def test_bad_axis_reports_config_error(self, tmp_path, capsys):
        code = main(
            ["sweep", "--grid", "nonsense",
             "--store", str(tmp_path / "store")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestResilienceCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["resilience"])
        assert args.fault == "crash"
        assert args.servers == 2
        assert args.clients == 1

    def test_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resilience", "--fault", "meteor"])

    def test_crash_reports_degradation_and_recovery(self, capsys):
        code = main(["--duration", "2.0", "resilience", "--fault", "crash"])
        assert code == 0
        out = capsys.readouterr().out
        assert "-> FALLBACK" in out
        assert "time to FALLBACK after fault onset" in out
        assert "time to FEEDBACK recovery" in out
        assert "circuit breakers:" in out
        assert "retries:" in out


class TestObsVerbs:
    def test_metrics_parser_defaults(self):
        args = build_parser().parse_args(["metrics"])
        assert args.policy == "feedback"
        assert args.format == "prom"

    def test_trace_parser_flags(self):
        args = build_parser().parse_args(["trace", "--shift", "3"])
        assert args.shift == 3 and args.request is None
        args = build_parser().parse_args(["trace", "--request", "17"])
        assert args.request == 17 and args.shift is None

    def test_metrics_prints_parseable_prometheus(self, capsys):
        from repro.obs import parse_prometheus_text

        code = main(["--duration", "0.2", "metrics"])
        assert code == 0
        families = parse_prometheus_text(capsys.readouterr().out)
        samples = families["repro_tlb_samples_total"]["samples"]
        assert samples
        _name, labels, _value = samples[0]
        assert "backend" in labels and "delta_us" in labels

    def test_metrics_json_format(self, capsys):
        import json

        code = main(["--duration", "0.2", "metrics", "--format", "json"])
        assert code == 0
        out = json.loads(capsys.readouterr().out)
        assert out["repro_lb_packets_total"]["type"] == "counter"

    def test_trace_lists_shifts(self, capsys):
        code = main(["--duration", "1", "trace"])
        assert code == 0
        out = capsys.readouterr().out
        assert "shift #0" in out
        assert "contributing samples" in out

    def test_trace_shift_attribution(self, capsys):
        code = main(["--duration", "1", "trace", "--shift", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "T_LB(us)" in out and "batch window" in out

    def test_trace_shift_out_of_range(self, capsys):
        code = main(["--duration", "1", "trace", "--shift", "100000"])
        assert code == 2
        assert "out of range" in capsys.readouterr().err


class TestInsightVerbs:
    def test_explain_parser_defaults(self):
        args = build_parser().parse_args(["explain"])
        assert args.shift is None and args.alert is None
        assert args.lookback == 0.25
        assert args.export is None

    def test_diff_parser_positionals(self):
        args = build_parser().parse_args(["diff", "a.jsonl", "b.jsonl"])
        assert args.run_a == "a.jsonl" and args.run_b == "b.jsonl"
        assert args.eps == 0.05

    def test_explain_overview(self, capsys):
        code = main(["--duration", "0.6", "explain"])
        assert code == 0
        out = capsys.readouterr().out
        assert "shifts (use --shift N):" in out

    def test_explain_shift_chain(self, capsys):
        code = main(["--duration", "0.6", "explain", "--shift", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "triggering sample:" in out
        assert "dominant upstream cause:" in out

    def test_explain_shift_out_of_range(self, capsys):
        code = main(["--duration", "0.6", "explain", "--shift", "100000"])
        assert code == 1
        assert capsys.readouterr().err

    def test_explain_rejects_both_flags(self, capsys):
        code = main(
            ["--duration", "0.6", "explain", "--shift", "0", "--alert", "0"]
        )
        assert code == 2

    def test_explain_export_then_diff(self, tmp_path, capsys):
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        assert main(["--duration", "0.6", "explain", "--export", a]) == 0
        assert main(
            ["--seed", "5", "--duration", "0.6", "explain", "--export", b]
        ) == 0
        code = main(["diff", a, b])
        assert code == 0
        out = capsys.readouterr().out
        assert "timeline written" in out
        assert "divergence" in out  # either kind of verdict mentions it

    def test_diff_missing_file(self, capsys):
        code = main(["diff", "/nonexistent/a.jsonl", "/nonexistent/b.jsonl"])
        assert code == 2
        assert "cannot load timeline" in capsys.readouterr().err

    def test_run_timeline_export(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        code = main(["--duration", "0.2", "run", "--timeline", path])
        assert code == 0
        from repro.insight import load_timeline

        timeline = load_timeline(path)
        assert len(timeline) > 0
        assert "insight:" in capsys.readouterr().out
