"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.policy == "feedback"
        assert args.servers == 2

    def test_ablation_choices(self):
        args = build_parser().parse_args(["ablation", "epoch"])
        assert args.sweep == "epoch"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation", "nonsense"])


class TestCommands:
    def test_run_prints_report(self, capsys):
        code = main(["--duration", "0.2", "run"])
        assert code == 0
        out = capsys.readouterr().out
        assert "completed requests" in out

    def test_fig2b_prints_tracking(self, capsys):
        code = main(["--duration", "0.5", "fig2b"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pre-step" in out and "post-step" in out

    def test_error_identity_table(self, capsys):
        code = main(["--duration", "0.3", "error"])
        assert code == 0
        out = capsys.readouterr().out
        assert "T_LB" in out

    def test_reaction(self, capsys):
        code = main(["--duration", "1.2", "reaction"])
        assert code == 0
        assert "first shift" in capsys.readouterr().out
