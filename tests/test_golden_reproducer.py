"""The committed reproducer artifact still reproduces its violation.

`tests/golden/reproducer-recovery-bound.json` is a shrunk campaign
artifact (produced by `examples/chaos_minimal_reproducer.py`): one 2x
slowdown on server0 judged against a deliberately unachievable 1 ms
recovery bound. Replaying it must yield exactly the recorded
`recovery-bound` violation — if this test fails, either the replay
pipeline or the recovery detector changed behaviour, and the artifact
format's promise ("a reproducer stays a reproducer") is broken.
"""

import os

from repro.campaign import load_artifact, load_violations, replay_artifact

GOLDEN = os.path.join(
    os.path.dirname(__file__), "golden", "reproducer-recovery-bound.json"
)


def test_golden_artifact_is_minimal_and_well_formed():
    point = load_artifact(GOLDEN)
    assert point.strategy == "alpha"
    assert len(point.faults) == 1  # the shrinker got it down to one
    assert point.faults[0]["kind"] == "slowdown"
    assert point.invariants == ["recovery-bound"]
    assert list(load_violations(GOLDEN)) == ["recovery-bound"]


def test_golden_artifact_still_reproduces():
    point, row = replay_artifact(GOLDEN)
    assert row["violated"] == ["recovery-bound"]
    recorded = load_violations(GOLDEN)["recovery-bound"]
    assert row["details"]["recovery-bound"] == recorded
