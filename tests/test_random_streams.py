"""Deterministic named RNG streams."""

from repro.sim.random import RandomStreams


class TestRandomStreams:
    def test_same_name_same_stream_object(self):
        streams = RandomStreams(seed=1)
        assert streams.get("a") is streams.get("a")

    def test_different_names_independent(self):
        streams = RandomStreams(seed=1)
        a = [streams.get("a").random() for _ in range(5)]
        b = [streams.get("b").random() for _ in range(5)]
        assert a != b

    def test_reproducible_across_instances(self):
        first = [RandomStreams(seed=7).get("x").random() for _ in range(3)]
        second = [RandomStreams(seed=7).get("x").random() for _ in range(3)]
        assert first == second

    def test_seed_changes_streams(self):
        one = RandomStreams(seed=1).get("x").random()
        two = RandomStreams(seed=2).get("x").random()
        assert one != two

    def test_draw_order_isolation(self):
        # Drawing from stream "a" must not perturb stream "b".
        s1 = RandomStreams(seed=5)
        s1.get("a").random()
        b_after_a = s1.get("b").random()

        s2 = RandomStreams(seed=5)
        b_direct = s2.get("b").random()
        assert b_after_a == b_direct

    def test_fork_independent_of_parent(self):
        parent = RandomStreams(seed=9)
        child = parent.fork("client0")
        assert child.seed != parent.seed
        assert child.get("x").random() != parent.get("x").random()

    def test_fork_reproducible(self):
        a = RandomStreams(seed=9).fork("c").get("x").random()
        b = RandomStreams(seed=9).fork("c").get("x").random()
        assert a == b

    def test_seed_property(self):
        assert RandomStreams(seed=42).seed == 42
