"""Health checking under a flapping probe path (satellite of the
resilience plane).

A periodic total-loss fault on the prober→server pipe makes one
backend go dark and return, repeatedly.  The checker must translate
that into exactly one down/up pair per fault window — no extra flaps —
and the Maglev table must rebuild only on those transitions, not on
every failed probe.  With a breaker board attached, probe outcomes
drive the breaker through open and back to closed.
"""

import random

import pytest

from repro.faults.injector import Injector
from repro.faults.model import LossFault
from repro.faults.schedule import FaultSchedule
from repro.lb.backend import Backend, BackendPool
from repro.lb.health import HealthCheckConfig, HealthChecker
from repro.lb.policies import MaglevPolicy
from repro.net.addr import Endpoint
from repro.net.network import Network
from repro.resilience.breaker import BreakerBoard, BreakerConfig, BreakerState
from repro.transport.endpoint import Host
from repro.units import MICROSECONDS, MILLISECONDS, SECONDS


DURATION = 3 * SECONDS
# Three windows of total probe loss on s0: [0.5s,1s), [1.5s,2s), [2.5s,3s).
FLAP = LossFault(
    start=500 * MILLISECONDS,
    duration=500 * MILLISECONDS,
    period=1 * SECONDS,
    prob=1.0,
    node="s0",
)


@pytest.fixture
def flapping(sim):
    network = Network(sim)
    prober = Host(network, "prober")
    for index in range(2):
        name = "s%d" % index
        host = Host(network, name)
        network.connect_bidirectional("prober", name, prop_delay=50 * MICROSECONDS)
        host.listen(
            7000,
            lambda conn: conn.__setattr__("on_peer_close", lambda c: c.close()),
        )
    pool = BackendPool([Backend("s0"), Backend("s1")])
    policy = MaglevPolicy(pool, table_size=251)
    board = BreakerBoard(BreakerConfig(reset_timeout=200 * MILLISECONDS))
    checker = HealthChecker(
        prober,
        pool,
        {"s0": Endpoint("s0", 7000), "s1": Endpoint("s1", 7000)},
        HealthCheckConfig(
            interval=50 * MILLISECONDS,
            timeout=20 * MILLISECONDS,
            fall=2,
            rise=2,
        ),
        breakers=board,
    )
    injector = Injector(
        sim,
        network,
        server_names=["s0", "s1"],
        lb_name="prober",  # loss faults land on the prober→server pipes
        loss_rng=random.Random(42),
    )
    injector.arm(FaultSchedule([FLAP]), DURATION)
    # Extra settle time past the last window so the final rise lands.
    sim.run_until(DURATION + 400 * MILLISECONDS)
    return pool, policy, board, checker, injector


class TestFlappingProbePath:
    def test_transitions_match_fault_windows(self, flapping):
        pool, policy, board, checker, injector = flapping
        windows = len(injector.armed_windows)
        assert windows == 3
        # One down + one up per window, nothing in between.
        assert checker.stats("s0").transitions == 2 * windows
        assert checker.stats("s1").transitions == 0
        assert pool.get("s0").healthy  # recovered after the last window
        assert pool.get("s1").healthy

    def test_maglev_rebuilds_bounded_by_transitions(self, flapping):
        pool, policy, board, checker, injector = flapping
        windows = len(injector.armed_windows)
        # One build at construction, one per health transition.  Failed
        # probes between transitions must not thrash the table.
        assert policy.table.builds == 1 + 2 * windows

    def test_probe_outcomes_drive_the_breaker(self, flapping):
        pool, policy, board, checker, injector = flapping
        states = [t.to_state for t in board.transitions if t.backend == "s0"]
        assert BreakerState.OPEN in states
        assert board.state("s0") is BreakerState.CLOSED  # recovered
        assert all(t.backend == "s0" for t in board.transitions)
