"""EWMA estimators."""

import math

import pytest

from repro.telemetry.ewma import Ewma, TimeDecayEwma


class TestEwma:
    def test_starts_empty(self):
        assert Ewma().value is None
        assert Ewma().count == 0

    def test_first_sample_initializes(self):
        ewma = Ewma(gain=0.5)
        assert ewma.observe(100.0) == 100.0

    def test_moves_toward_samples(self):
        ewma = Ewma(gain=0.5)
        ewma.observe(100.0)
        assert ewma.observe(200.0) == 150.0

    def test_constant_input_is_fixed_point(self):
        ewma = Ewma(gain=0.3)
        for _ in range(20):
            ewma.observe(42.0)
        assert ewma.value == pytest.approx(42.0)

    def test_converges_to_new_level(self):
        ewma = Ewma(gain=0.5)
        ewma.observe(0.0)
        for _ in range(30):
            ewma.observe(1000.0)
        assert ewma.value == pytest.approx(1000.0, rel=1e-6)

    def test_gain_validation(self):
        with pytest.raises(ValueError):
            Ewma(gain=0.0)
        with pytest.raises(ValueError):
            Ewma(gain=1.5)
        Ewma(gain=1.0)  # boundary allowed: latest-sample tracker

    def test_reset(self):
        ewma = Ewma()
        ewma.observe(5.0)
        ewma.reset()
        assert ewma.value is None
        assert ewma.count == 0

    def test_count_increments(self):
        ewma = Ewma()
        for i in range(5):
            ewma.observe(float(i))
        assert ewma.count == 5


class TestTimeDecayEwma:
    def test_first_sample_initializes(self):
        ewma = TimeDecayEwma(tau=1000)
        assert ewma.observe(0, 50.0) == 50.0

    def test_decay_depends_on_elapsed_time(self):
        fast = TimeDecayEwma(tau=1000)
        fast.observe(0, 0.0)
        fast.observe(10_000, 100.0)  # 10 tau elapsed: nearly full weight
        assert fast.value == pytest.approx(100.0, abs=0.1)

        slow = TimeDecayEwma(tau=1000)
        slow.observe(0, 0.0)
        slow.observe(10, 100.0)  # 0.01 tau elapsed: barely moves
        assert slow.value < 2.0

    def test_exact_one_tau_weight(self):
        ewma = TimeDecayEwma(tau=1000)
        ewma.observe(0, 0.0)
        ewma.observe(1000, 100.0)
        assert ewma.value == pytest.approx(100.0 * (1 - math.exp(-1)))

    def test_same_timestamp_keeps_value(self):
        ewma = TimeDecayEwma(tau=1000)
        ewma.observe(500, 10.0)
        ewma.observe(500, 99.0)  # dt=0 -> zero weight
        assert ewma.value == pytest.approx(10.0)

    def test_tau_validation(self):
        with pytest.raises(ValueError):
            TimeDecayEwma(tau=0)

    def test_reset(self):
        ewma = TimeDecayEwma(tau=10)
        ewma.observe(0, 1.0)
        ewma.reset()
        assert ewma.value is None
        assert ewma.count == 0
