"""Sweep specification expansion."""

import json

import pytest

from repro.errors import ConfigError
from repro.faults.model import DelayFault, LossFault
from repro.harness.config import PolicyName, ScenarioConfig
from repro.sim.random import derive_seed
from repro.sweep import (
    SweepSpec,
    apply_overrides,
    load_spec,
    parse_axis,
    parse_scalar,
)
from repro.units import MILLISECONDS, SECONDS


def _base(**kwargs):
    kwargs.setdefault("duration", 500 * MILLISECONDS)
    return ScenarioConfig(**kwargs)


class TestGridExpansion:
    def test_empty_spec_is_one_base_point(self):
        points = SweepSpec(base=_base()).expand()
        assert len(points) == 1
        assert points[0].overrides == {}
        assert points[0].label == "base"
        assert points[0].config.seed == 1  # base seed untouched

    def test_grid_is_cartesian_product(self):
        spec = SweepSpec(
            base=_base(),
            grid={"feedback.controller.alpha": [0.05, 0.1], "seed": [1, 2, 3]},
        )
        points = spec.expand()
        assert len(points) == 6
        combos = {
            (p.overrides["feedback.controller.alpha"], p.overrides["seed"])
            for p in points
        }
        assert combos == {(a, s) for a in (0.05, 0.1) for s in (1, 2, 3)}

    def test_expansion_order_is_deterministic(self):
        spec = SweepSpec(base=_base(), grid={"seed": [2, 1], "n_servers": [3, 2]})
        first = [p.overrides for p in spec.expand()]
        second = [p.overrides for p in spec.expand()]
        assert first == second

    def test_empty_grid_axis_rejected(self):
        with pytest.raises(ConfigError):
            SweepSpec(base=_base(), grid={"seed": []}).expand()

    def test_configs_are_independent_copies(self):
        spec = SweepSpec(base=_base(), grid={"seed": [1, 2]})
        points = spec.expand()
        points[0].config.n_servers = 99
        assert points[1].config.n_servers != 99
        assert spec.base.n_servers != 99


class TestZipExpansion:
    def test_zipped_axes_advance_together(self):
        spec = SweepSpec(
            base=_base(),
            zipped={"seed": [1, 2], "n_servers": [2, 3]},
        )
        points = spec.expand()
        assert [p.overrides for p in points] == [
            {"n_servers": 2, "seed": 1},
            {"n_servers": 3, "seed": 2},
        ]

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ConfigError):
            SweepSpec(
                base=_base(), zipped={"seed": [1, 2], "n_servers": [2]}
            ).expand()

    def test_zip_composes_with_grid(self):
        spec = SweepSpec(
            base=_base(),
            grid={"memtier.pipeline": [1, 2]},
            zipped={"seed": [5, 6], "n_servers": [2, 3]},
        )
        assert len(spec.expand()) == 4


class TestPointsAndSeeds:
    def test_explicit_points(self):
        spec = SweepSpec(
            base=_base(),
            points=[{"seed": 9}, {"n_servers": 4, "seed": 10}],
        )
        points = spec.expand()
        assert len(points) == 2
        assert points[1].config.n_servers == 4

    def test_seeds_axis_replicates_points(self):
        spec = SweepSpec(
            base=_base(), grid={"n_servers": [2, 3]}, seeds=[7, 8]
        )
        points = spec.expand()
        assert len(points) == 4
        assert {p.config.seed for p in points} == {7, 8}

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigError):
            SweepSpec(base=_base(), seeds=[]).expand()


class TestSeedDerivation:
    def test_derived_seed_is_stable_and_decorrelated(self):
        spec = SweepSpec(
            base=_base(), grid={"feedback.controller.alpha": [0.1, 0.2]}
        )
        points = spec.expand()
        again = spec.expand()
        assert [p.config.seed for p in points] == [p.config.seed for p in again]
        assert points[0].config.seed != points[1].config.seed
        assert points[0].config.seed != spec.base.seed

    def test_explicit_seed_not_overridden(self):
        spec = SweepSpec(base=_base(), grid={"seed": [41, 42]})
        assert [p.config.seed for p in spec.expand()] == [41, 42]

    def test_derivation_can_be_disabled(self):
        spec = SweepSpec(
            base=_base(),
            grid={"feedback.controller.alpha": [0.1, 0.2]},
            derive_seeds=False,
        )
        assert [p.config.seed for p in spec.expand()] == [1, 1]

    def test_derive_seed_matches_expansion(self):
        spec = SweepSpec(base=_base(), grid={"n_servers": [3]})
        point = spec.expand()[0]
        assert point.config.seed == derive_seed(
            spec.base.seed, "sweep-point", '{"n_servers":3}'
        )


class TestOverridePaths:
    def test_nested_path(self):
        config = apply_overrides(
            _base(), {"feedback.controller.alpha": 0.42}
        )
        assert config.feedback.controller.alpha == 0.42

    def test_unknown_path_rejected(self):
        with pytest.raises(ConfigError, match="no field"):
            apply_overrides(_base(), {"feedback.controller.alhpa": 0.1})

    def test_policy_string_coerced(self):
        config = apply_overrides(_base(), {"policy": "maglev"})
        assert config.policy is PolicyName.MAGLEV
        with pytest.raises(ConfigError, match="unknown policy"):
            apply_overrides(_base(), {"policy": "nonsense"})

    def test_time_string_coerced_for_int_fields(self):
        config = apply_overrides(_base(), {"duration": "250ms"})
        assert config.duration == 250 * MILLISECONDS

    def test_fault_strings_expand_against_final_duration(self):
        config = apply_overrides(
            _base(),
            {
                "duration": "1s",
                "faults": ["delay:node=server0,start=600ms,extra=1ms"],
            },
        )
        assert config.duration == 1 * SECONDS
        assert len(config.faults) == 1
        fault = config.faults[0]
        assert isinstance(fault, DelayFault)
        assert fault.start == 600 * MILLISECONDS
        config.validate()  # 600ms < 1s: duration was applied first

    def test_fault_instances_pass_through(self):
        fault = LossFault(start=0, prob=0.1)
        config = apply_overrides(_base(), {"faults": [fault]})
        assert config.faults == [fault]

    def test_bad_fault_entry_rejected(self):
        with pytest.raises(ConfigError):
            apply_overrides(_base(), {"faults": [42]})


class TestLabels:
    def test_label_uses_leaf_names_sorted(self):
        spec = SweepSpec(
            base=_base(),
            points=[{"feedback.controller.alpha": 0.1, "seed": 3}],
        )
        assert spec.expand()[0].label == "alpha=0.1,seed=3"


class TestSpecFiles:
    def test_from_dict_roundtrip(self, tmp_path):
        doc = {
            "name": "alpha-grid",
            "base": {"duration": "400ms", "policy": "feedback"},
            "grid": {"feedback.controller.alpha": [0.05, 0.1]},
            "seeds": [1, 2],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(doc))
        spec = load_spec(str(path))
        assert spec.name == "alpha-grid"
        assert spec.base.duration == 400 * MILLISECONDS
        assert len(spec.expand()) == 4

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown sweep spec keys"):
            SweepSpec.from_dict({"grdi": {}})

    def test_missing_file_rejected(self):
        with pytest.raises(ConfigError, match="cannot read"):
            load_spec("/nonexistent/spec.json")

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_spec(str(path))


class TestInlineParsing:
    def test_parse_axis(self):
        path, values = parse_axis("feedback.controller.alpha=0.05,0.1")
        assert path == "feedback.controller.alpha"
        assert values == [0.05, 0.1]

    def test_parse_axis_rejects_malformed(self):
        for text in ("noequals", "=1,2", "path="):
            with pytest.raises(ConfigError):
                parse_axis(text)

    def test_parse_scalar_forms(self):
        assert parse_scalar("3") == 3
        assert parse_scalar("0.5") == 0.5
        assert parse_scalar("250ms") == 250 * MILLISECONDS
        assert parse_scalar("maglev") == "maglev"
        with pytest.raises(ConfigError):
            parse_scalar("maglev", want_time=True)
