"""Server application: queueing, service times, responses, DSR sourcing."""

import pytest

from repro.app.protocol import Op, Request, Response
from repro.app.server import ServerApp, ServerConfig, SinkApp
from repro.app.servicetime import Deterministic
from repro.app.variability import StepInjector
from repro.net.addr import Endpoint
from repro.sim.random import RandomStreams
from repro.units import MICROSECONDS, MILLISECONDS, SECONDS

from tests.conftest import PairTopology


def make_server(pair, config=None):
    config = config or ServerConfig(port=7000)
    streams = RandomStreams(0)
    return ServerApp(pair.server, config, streams.get("svc"))


def send_requests(sim, pair, requests, port=7000):
    """Connect, fire requests, collect responses."""
    responses = []
    conn = pair.client.connect(Endpoint("server", port))
    conn.on_message = lambda c, m: responses.append((sim.now, m))
    for request in requests:
        conn.send_message(request, request.wire_size)
    return conn, responses


class TestGetSet:
    def test_set_then_get_hits(self, sim, pair):
        make_server(pair)
        requests = [
            Request(op=Op.SET, key="k", value_size=400),
            Request(op=Op.GET, key="k"),
        ]
        _conn, responses = send_requests(sim, pair, requests)
        sim.run_until(1 * SECONDS)
        assert len(responses) == 2
        set_resp, get_resp = responses[0][1], responses[1][1]
        assert set_resp.op is Op.SET and set_resp.hit
        assert get_resp.op is Op.GET and get_resp.hit
        assert get_resp.value_size == 400

    def test_get_missing_key_misses(self, sim, pair):
        make_server(pair)
        _conn, responses = send_requests(sim, pair, [Request(op=Op.GET, key="nope")])
        sim.run_until(1 * SECONDS)
        assert responses[0][1].hit is False

    def test_responses_attributed_to_server(self, sim, pair):
        make_server(pair)
        _conn, responses = send_requests(sim, pair, [Request(op=Op.GET, key="x")])
        sim.run_until(1 * SECONDS)
        assert responses[0][1].server == "server"

    def test_non_request_message_ignored(self, sim, pair):
        server = make_server(pair)
        conn = pair.client.connect(Endpoint("server", 7000))
        conn.send_message("garbage", 64)
        sim.run_until(100 * MILLISECONDS)
        assert server.stats.requests == 0


class TestServiceTiming:
    def test_response_delayed_by_service_time(self, sim, pair):
        service = 300 * MICROSECONDS
        make_server(pair, ServerConfig(port=7000, service_model=Deterministic(service)))
        _conn, responses = send_requests(sim, pair, [Request(op=Op.GET, key="k")])
        sim.run_until(1 * SECONDS)
        rtt = 2 * pair.one_way
        latency = responses[0][0] - 0
        # handshake (1 RTT) + request/response (1 RTT) + service.
        assert latency == pytest.approx(2 * rtt + service, rel=0.1)

    def test_single_worker_queues_fifo(self, sim, pair):
        service = 1 * MILLISECONDS
        server = make_server(
            pair, ServerConfig(port=7000, workers=1, service_model=Deterministic(service))
        )
        requests = [Request(op=Op.GET, key="k%d" % i) for i in range(3)]
        _conn, responses = send_requests(sim, pair, requests)
        sim.run_until(1 * SECONDS)
        times = [t for t, _m in responses]
        # Completions spaced by the service time (queueing).
        assert times[1] - times[0] == pytest.approx(service, rel=0.05)
        assert times[2] - times[1] == pytest.approx(service, rel=0.05)
        assert max(server.stats.queue_delays) >= service

    def test_multiple_workers_run_concurrently(self, sim, pair):
        service = 1 * MILLISECONDS
        make_server(
            pair, ServerConfig(port=7000, workers=3, service_model=Deterministic(service))
        )
        requests = [Request(op=Op.GET, key="k%d" % i) for i in range(3)]
        _conn, responses = send_requests(sim, pair, requests)
        sim.run_until(1 * SECONDS)
        times = [t for t, _m in responses]
        # All three complete within ~serialization of each other.
        assert times[2] - times[0] < service // 2

    def test_injector_inflates_processing(self, sim, pair):
        injector = StepInjector(extra=2 * MILLISECONDS, start=0)
        make_server(
            pair,
            ServerConfig(
                port=7000,
                service_model=Deterministic(100 * MICROSECONDS),
                injector=injector,
            ),
        )
        _conn, responses = send_requests(sim, pair, [Request(op=Op.GET, key="k")])
        sim.run_until(1 * SECONDS)
        rtt = 2 * pair.one_way
        latency = responses[0][0]
        assert latency >= 2 * rtt + 2 * MILLISECONDS

    def test_utilization(self, sim, pair):
        server = make_server(
            pair,
            ServerConfig(port=7000, service_model=Deterministic(1 * MILLISECONDS)),
        )
        requests = [Request(op=Op.GET, key="k%d" % i) for i in range(5)]
        send_requests(sim, pair, requests)
        sim.run_until(10 * MILLISECONDS)
        assert server.utilization(10 * MILLISECONDS) == pytest.approx(0.5, rel=0.1)
        assert server.utilization(0) == 0.0


class TestStats:
    def test_request_and_response_counts(self, sim, pair):
        server = make_server(pair)
        requests = [Request(op=Op.GET, key="k%d" % i) for i in range(7)]
        send_requests(sim, pair, requests)
        sim.run_until(1 * SECONDS)
        assert server.stats.requests == 7
        assert server.stats.responses == 7
        assert len(server.stats.service_times) == 7


class TestSinkApp:
    def test_sink_counts_messages_and_never_replies(self, sim, pair):
        sink = SinkApp(pair.server, 7000)
        replies = []
        conn = pair.client.connect(Endpoint("server", 7000))
        conn.on_message = lambda c, m: replies.append(m)
        for i in range(5):
            conn.send_message(i, 100)
        sim.run_until(100 * MILLISECONDS)
        assert sink.messages_received == 5
        assert replies == []

    def test_sink_closes_with_peer(self, sim, pair):
        SinkApp(pair.server, 7000)
        conn = pair.client.connect(Endpoint("server", 7000))
        sim.run_until(10 * MILLISECONDS)
        conn.close()
        sim.run_until(50 * MILLISECONDS)
        assert pair.server.connection_count == 0
