"""Campaign runner: expansion, caching, jobs determinism, artifacts, CLI."""

import json

import pytest

import repro.campaign.runner as runner_module
from repro.campaign import (
    CampaignConfig,
    GeneratorConfig,
    ShrinkStats,
    campaign_points,
    load_artifact,
    load_violations,
    replay_artifact,
    run_campaign,
)
from repro.campaign.registry import _REGISTRY, register
from repro.cli import main
from repro.errors import ConfigError, InvariantViolation
from repro.sweep.store import ResultStore
from repro.units import MILLISECONDS, SECONDS

MS = MILLISECONDS


def small_config(**kwargs):
    defaults = dict(
        seed=7,
        runs=3,
        duration=400 * MS,
        n_servers=2,
        controllers=("alpha", "proportional"),
        generator=GeneratorConfig(max_faults=2),
        fleet_every=3,
    )
    defaults.update(kwargs)
    return CampaignConfig(**defaults)


class TestPointExpansion:
    def test_expansion_is_deterministic(self):
        assert campaign_points(small_config()) == campaign_points(
            small_config()
        )

    def test_controllers_cycle_round_robin(self):
        points = campaign_points(small_config(runs=5))
        assert [p.strategy for p in points] == [
            "alpha",
            "proportional",
            "alpha",
            "proportional",
            "alpha",
        ]

    def test_fleet_every_arms_every_nth_run(self):
        points = campaign_points(small_config(runs=6, fleet_every=2))
        assert [p.fleet for p in points] == [
            False, True, False, True, False, True,
        ]
        points = campaign_points(small_config(runs=4, fleet_every=0))
        assert not any(p.fleet for p in points)

    def test_each_run_gets_its_own_schedule_and_seed(self):
        points = campaign_points(small_config(runs=4))
        assert len({p.seed for p in points}) == 4
        assert len({json.dumps(p.faults, sort_keys=True) for p in points}) > 1

    def test_invariant_subset_propagates(self):
        points = campaign_points(
            small_config(invariants=("ladder-legal", "breaker-legal"))
        )
        assert points[0].invariants == ["ladder-legal", "breaker-legal"]

    def test_unknown_controller_rejected(self):
        with pytest.raises(ConfigError, match="unknown control strategy"):
            run_campaign(small_config(controllers=("alpha", "gremlin")))

    def test_single_server_campaign_rejected(self):
        with pytest.raises(ConfigError):
            small_config(n_servers=1).validate()


@pytest.fixture(scope="module")
def campaign_store(tmp_path_factory):
    return tmp_path_factory.mktemp("campaign-store")


@pytest.fixture(scope="module")
def campaign(campaign_store):
    return run_campaign(
        small_config(), jobs=1, store=ResultStore(str(campaign_store))
    )


class TestSmallCampaign:
    def test_known_good_configs_pass_every_invariant(self, campaign):
        assert len(campaign.rows) == 3
        assert all(row["violations"] == 0 for row in campaign.rows)
        assert all(row["checks"] == len(_REGISTRY) for row in campaign.rows)
        campaign.raise_if_violated()  # must not raise
        assert campaign.violating() == []
        assert campaign.artifacts == []

    def test_every_run_served_traffic(self, campaign):
        assert all(row["requests"] > 0 for row in campaign.rows)

    def test_table_and_summary_render(self, campaign):
        table = campaign.table()
        assert "controller" in table and "violated" in table
        assert "alpha" in table and "proportional" in table
        summary = campaign.summary()
        assert summary.startswith("campaign: 3 runs, 2 controllers,")
        assert "0 violations, 0 reproducers" in summary
        assert "sweep campaign: 3 points" in summary

    def test_rerun_is_served_from_the_cache(self, campaign, campaign_store):
        again = run_campaign(
            small_config(), jobs=1, store=ResultStore(str(campaign_store))
        )
        assert again.report.hits == 3
        assert again.report.simulated == 0
        assert json.dumps(again.rows, sort_keys=True) == json.dumps(
            campaign.rows, sort_keys=True
        )


class TestJobsDeterminism:
    def test_parallel_rows_byte_identical_to_inline(
        self, campaign, tmp_path
    ):
        parallel = run_campaign(
            small_config(),
            jobs=2,
            store=ResultStore(str(tmp_path / "parallel-store")),
        )
        assert parallel.report.simulated == 3  # fresh store, really ran
        assert json.dumps(parallel.rows, sort_keys=True) == json.dumps(
            campaign.rows, sort_keys=True
        )


@pytest.fixture
def always_fails(monkeypatch):
    """A temp invariant that always fires, plus a stubbed shrinker so the
    artifact path costs no extra simulations."""

    @register("always-fails", summary="test-only tripwire")
    def _check(context):
        return ["synthetic violation for the artifact round trip"]

    monkeypatch.setattr(
        runner_module,
        "shrink_point",
        lambda point, violated, store=None, use_cache=True: (
            point,
            ShrinkStats(
                attempts=1,
                accepted=0,
                from_faults=len(point.faults),
                to_faults=len(point.faults),
            ),
        ),
    )
    yield
    _REGISTRY.pop("always-fails")


class TestArtifacts:
    def test_violations_shrink_to_replayable_artifacts(
        self, always_fails, tmp_path
    ):
        store = ResultStore(str(tmp_path / "store"))
        config = small_config(
            runs=2,
            duration=300 * MS,
            controllers=("alpha",),
            fleet_every=0,
            invariants=("always-fails",),
        )
        campaign = run_campaign(
            config,
            store=store,
            artifact_dir=str(tmp_path / "artifacts"),
            max_artifacts=1,
        )
        assert all(row["violated"] == ["always-fails"] for row in campaign.rows)
        assert len(campaign.artifacts) == 1  # max_artifacts caps the output

        path = campaign.artifacts[0]
        point = load_artifact(path)
        assert point == campaign.points[0]
        assert list(load_violations(path)) == ["always-fails"]
        payload = json.loads(open(path).read())
        assert payload["format"] == "repro.campaign/reproducer-v1"
        assert payload["shrink"]["attempts"] == 1

        replayed_point, row = replay_artifact(path, store=store)
        assert replayed_point == point
        assert row["violated"] == ["always-fails"]

        with pytest.raises(InvariantViolation) as excinfo:
            campaign.raise_if_violated()
        assert excinfo.value.artifact == path
        assert "always-fails" in str(excinfo.value)

    def test_cli_replay_exits_nonzero_and_matches_verdict(
        self, always_fails, tmp_path, capsys
    ):
        store_dir = str(tmp_path / "store")
        campaign = run_campaign(
            small_config(
                runs=1,
                duration=300 * MS,
                controllers=("alpha",),
                fleet_every=0,
                invariants=("always-fails",),
            ),
            store=ResultStore(store_dir),
            artifact_dir=str(tmp_path / "artifacts"),
        )
        code = main(
            ["chaos", "replay", campaign.artifacts[0], "--store", store_dir]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "replayed run 0 (alpha" in out
        assert "verdict matches the artifact" in out


class TestCli:
    def test_chaos_campaign_smoke(self, tmp_path, capsys):
        code = main(
            [
                "--duration",
                "0.3",
                "chaos",
                "--runs",
                "2",
                "--servers",
                "2",
                "--fleet-every",
                "0",
                "--max-faults",
                "2",
                "--store",
                str(tmp_path / "store"),
                "--artifacts",
                str(tmp_path / "artifacts"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign: 2 runs, 1 controllers," in out
        assert "0 violations" in out

    def test_replay_without_artifact_is_a_usage_error(self, capsys):
        assert main(["chaos", "replay"]) == 2
