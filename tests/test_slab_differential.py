"""Differential proofs for the slab dataplane and the vectorized seams.

The slab refactor replaces per-packet ``Packet`` objects with integer
handles into a :class:`~repro.net.packet.PacketSlab`, and the batched
observe/epoch-roll seams replace per-call loops with array-shaped ones.
None of that is allowed to change a single simulated byte: same
samples, same shifts, same drops, same event counts, same rendered
reports.  These tests pin that equivalence:

* slab-vs-object: a full scenario run twice, differing only in
  ``ScenarioConfig.slab``, must render the identical report;
* numpy-vs-python: the vectorized cliff detector against the reference
  loop (and the auto-selection that picks between them);
* batch-vs-loop: ``EnsembleTimeout.observe_batch`` and
  ``BackendLatencyEstimator.observe_batch`` against their per-sample
  spellings;
* leak-freedom: every slab record allocated during a run is either
  freed or still parked in a pipe at cutoff — nothing dangles.

The whole module must pass with and without numpy installed (the
no-numpy CI leg runs it with the import blocked).
"""

import random
import re

import pytest

from repro import units
from repro.core.ensemble import (
    EnsembleConfig,
    EnsembleTimeout,
    _cliff_numpy,
    _cliff_python,
    _np,
    detect_cliff_index,
)
from repro.core.estimator import BackendLatencyEstimator, EstimatorConfig
from repro.faults import DelayFault, parse_faults
from repro.harness.config import PolicyName, ScenarioConfig
from repro.harness.runner import run_scenario
from repro.units import MICROSECONDS, MILLISECONDS

_WALL_CLOCK = re.compile(r", \d+ events/sec wall-clock")


def _run_report(slab: bool):
    """One small feedback scenario (with a fault, so weights shift)."""
    config = ScenarioConfig(
        seed=3,
        duration=300 * MILLISECONDS,
        n_clients=2,
        n_servers=3,
        policy=PolicyName.FEEDBACK,
        faults=[
            DelayFault(
                start=100 * MILLISECONDS,
                extra=1 * MILLISECONDS,
                node="server0",
            )
        ],
        slab=slab,
    )
    result = run_scenario(config)
    return result, _WALL_CLOCK.sub("", result.report())


class TestSlabVsObject:
    def test_scenario_reports_byte_identical(self):
        slab_result, slab_report = _run_report(slab=True)
        obj_result, obj_report = _run_report(slab=False)
        assert slab_report == obj_report
        # The report already covers most of these; pin the raw numbers
        # too so a masked report change can't hide a divergence.
        assert slab_result.wall_events == obj_result.wall_events
        assert len(slab_result.records) == len(obj_result.records)
        assert (
            slab_result.scenario.sim.peak_queue_depth
            == obj_result.scenario.sim.peak_queue_depth
        )
        slab_fb = slab_result.scenario.feedback
        obj_fb = obj_result.scenario.feedback
        assert (
            slab_fb.estimator.total_samples == obj_fb.estimator.total_samples
        )
        assert [
            (e.time, e.from_backend, e.weights_after)
            for e in slab_fb.shift_events()
        ] == [
            (e.time, e.from_backend, e.weights_after)
            for e in obj_fb.shift_events()
        ]

    def test_per_record_equivalence(self):
        slab_result, _ = _run_report(slab=True)
        obj_result, _ = _run_report(slab=False)
        # request_id comes from a process-global counter, so absolute
        # ids differ between two runs in one process; compare everything
        # positional instead.
        slab_rows = [
            (r.completed_at, r.latency, r.server, r.op)
            for r in slab_result.records
        ]
        obj_rows = [
            (r.completed_at, r.latency, r.server, r.op)
            for r in obj_result.records
        ]
        assert slab_rows == obj_rows

    def test_no_slab_records_leak(self):
        result, _ = _run_report(slab=True)
        scenario = result.scenario
        slab = scenario.network.slab
        assert slab is not None
        # Whatever is still live at cutoff is exactly the in-flight
        # packets parked in pipe arrival queues — nothing dangles.
        assert slab.live == scenario.sim.parked_packets

    @pytest.mark.slow
    def test_fig3_golden_with_slab_off(self):
        """The pinned Fig 3 report is reproduced by the object dataplane.

        ``test_golden_alpha`` runs the default (slab) path against the
        golden file; this is the other half of the byte-identity claim.
        """
        import os

        duration = units.seconds(1.0)
        config = ScenarioConfig(
            seed=1,
            duration=duration,
            n_clients=1,
            n_servers=2,
            policy=PolicyName.FEEDBACK,
            faults=parse_faults("fig3", duration),
            warmup=duration // 10,
            slab=False,
        )
        report = _WALL_CLOCK.sub("", run_scenario(config).report())
        golden = os.path.join(
            os.path.dirname(__file__), "golden", "fig3_alpha_report.txt"
        )
        with open(golden) as handle:
            assert report == handle.read().rstrip("\n")


class TestCliffVectorization:
    def _cases(self):
        rng = random.Random(11)
        cases = [
            [10, 10, 10, 10],          # flat: index 0 wins ties
            [0, 0, 0, 1],              # zeros guarded by max(·, 1)
            [5, 0, 0, 0],
            [1000, 999, 3, 2, 1],      # the paper's cliff shape
            [1, 2, 3, 4, 5],           # monotone increasing
        ]
        for _ in range(200):
            k = rng.randint(2, 9)
            cases.append([rng.randint(0, 50) for _ in range(k)])
        return cases

    @pytest.mark.skipif(_np is None, reason="numpy not installed")
    def test_numpy_matches_python(self):
        for counts in self._cases():
            assert _cliff_numpy(counts) == _cliff_python(counts), counts

    def test_auto_selection(self):
        expected = _cliff_python if _np is None else _cliff_numpy
        assert detect_cliff_index is expected

    def test_python_reference_shape(self):
        # First strictly-greater ratio wins; ties resolve to the lowest
        # index (the property argmax must reproduce).
        assert _cliff_python([4, 4, 4]) == 0
        assert _cliff_python([4, 1, 16, 1]) == 2


def _gap_trace(n=5_000, seed=7):
    rng = random.Random(seed)
    choices = (2_000, 2_000, 2_000, 30_000, 300_000, 5_000_000)
    t = 0
    trace = []
    for _ in range(n):
        t += rng.choice(choices)
        trace.append(t)
    return trace


class TestObserveBatch:
    @pytest.mark.parametrize("fused", [True, False])
    def test_ensemble_batch_matches_loop(self, fused):
        trace = _gap_trace()
        loop = EnsembleTimeout(EnsembleConfig(), fused=fused)
        batch = EnsembleTimeout(EnsembleConfig(), fused=fused)

        loop_samples = []
        for now in trace:
            t_lb = loop.observe(now)
            if t_lb is not None:
                loop_samples.append((now, t_lb))
        # Feed the same trace in uneven chunks (1, 2, 3, ... packets) so
        # batch boundaries land everywhere relative to epoch boundaries.
        batch_samples = []
        i = 0
        size = 1
        while i < len(trace):
            batch_samples.extend(batch.observe_batch(trace[i : i + size]))
            i += size
            size = size % 7 + 1

        assert batch_samples == loop_samples
        assert batch.sample_counts() == loop.sample_counts()
        assert batch.current_timeout == loop.current_timeout

    def test_estimator_batch_matches_loop(self):
        rng = random.Random(3)
        samples = []
        t = 0
        for _ in range(500):
            t += rng.randint(1_000, 50_000)
            samples.append((t, rng.randint(0, 2 * MICROSECONDS)))

        loop = BackendLatencyEstimator(EstimatorConfig())
        batch = BackendLatencyEstimator(EstimatorConfig())
        for now, t_lb in samples:
            loop.observe("server0", now, t_lb)
        batch.observe_batch("server0", samples)

        assert batch.total_samples == loop.total_samples
        loop_state = loop._backends["server0"]
        batch_state = batch._backends["server0"]
        assert batch_state.samples == loop_state.samples
        assert batch_state.last_sample_at == loop_state.last_sample_at
        assert batch_state.ewma.value == loop_state.ewma.value
        assert batch_state.window.quantile(0.95) == loop_state.window.quantile(
            0.95
        )

    def test_estimator_batch_rejects_negative(self):
        estimator = BackendLatencyEstimator(EstimatorConfig())
        with pytest.raises(ValueError):
            estimator.observe_batch("server0", [(10, 5), (20, -1)])

    def test_estimator_batch_empty_is_noop(self):
        estimator = BackendLatencyEstimator(EstimatorConfig())
        estimator.observe_batch("server0", [])
        assert estimator.total_samples == 0


class TestBatchSeams:
    """The wave-shaped fast paths against their per-packet spellings."""

    def test_alloc_batch_matches_sequential(self):
        from repro.net.addr import Endpoint
        from repro.net.packet import PacketSlab

        seq_slab, batch_slab = PacketSlab(), PacketSlab()
        for slab in (seq_slab, batch_slab):
            src = slab.intern_endpoint(Endpoint("a", 1))
            dst = slab.intern_endpoint(Endpoint("b", 2))
            fid = slab.intern_flow(src, dst)
        seqs = list(range(40))
        seq_handles = [
            seq_slab.alloc(0, 1, 0, 0, s, 7, 100, None, 123) for s in seqs
        ]
        batch_handles = batch_slab.alloc_batch(0, 1, 0, 0, seqs, 7, 100, None, 123)
        assert batch_handles == seq_handles

        # Packet ids draw from the shared global counter (the two slabs
        # interleave on it), so compare deltas within each allocation —
        # and before recycling overwrites the slots.
        def rel(slab, handles):
            ids = slab.packet_id
            base = ids[handles[0]]
            return [ids[h] - base for h in handles]

        assert rel(seq_slab, seq_handles) == rel(batch_slab, batch_handles)
        # Recycle an arbitrary subset and re-allocate through both
        # spellings: handle recycling order must stay identical.
        victims = [3, 17, 4, 29, 11]
        for h in victims:
            seq_slab.free(h)
        batch_slab.free_batch(victims)
        seqs2 = list(range(100, 110))
        seq_handles2 = [
            seq_slab.alloc(1, 0, 0, 2, s, 0, 60, None, 456) for s in seqs2
        ]
        batch_handles2 = batch_slab.alloc_batch(1, 0, 0, 2, seqs2, 0, 60, None, 456)
        assert batch_handles2 == seq_handles2
        for col in (
            "flags",
            "seq",
            "ack",
            "payload_len",
            "boundaries",
            "sent_at",
            "src_i",
            "dst_i",
            "fid",
            "retransmit",
        ):
            assert getattr(seq_slab, col) == getattr(batch_slab, col), col
        assert rel(seq_slab, seq_handles2) == rel(batch_slab, batch_handles2)

    def _stream(self, batched, packets=500, waves=3):
        from repro.net.addr import Endpoint
        from repro.net.packet import PacketSlab
        from repro.net.pipe import Pipe
        from repro.sim.engine import Simulator

        sim = Simulator()
        slab = PacketSlab()
        pipe = Pipe(sim, "bench", prop_delay=10 * units.MICROSECONDS, slab=slab)
        src = slab.intern_endpoint(Endpoint("a", 1))
        dst = slab.intern_endpoint(Endpoint("b", 2))
        fid = slab.intern_flow(src, dst)
        order = []

        def deliver(handle):
            order.append((slab.seq[handle], slab.packet_id[handle]))
            slab.free(handle)

        pipe.connect(deliver)
        if batched:

            def deliver_batch(handles):
                for handle in handles:
                    order.append((slab.seq[handle], slab.packet_id[handle]))
                slab.free_batch(handles)

            pipe.connect_batch(deliver_batch)
        for wave in range(waves):
            seqs = range(wave * packets, (wave + 1) * packets)
            if batched:
                pipe.send_batch(
                    slab.alloc_batch(src, dst, fid, 0, seqs, 0, 100, None, 0)
                )
            else:
                for s in seqs:
                    pipe.send(slab.alloc(src, dst, fid, 0, s, 0, 100, None, 0))
            sim.run()
        first_id = order[0][1]
        return {
            "order": [(s, pid - first_id) for s, pid in order],
            "events": sim.events_processed,
            "now": sim.now,
            "peak_depth": sim.peak_queue_depth,
            "peak_load": sim.peak_load,
            "sent": pipe.stats.packets_sent,
            "delivered": pipe.stats.packets_delivered,
            "bytes_sent": pipe.stats.bytes_sent,
            "bytes_delivered": pipe.stats.bytes_delivered,
            "live": slab.live,
        }

    def test_send_batch_and_bulk_drain_match_per_packet(self):
        assert self._stream(batched=True) == self._stream(batched=False)

    def test_send_batch_falls_back_on_wire_model(self):
        """With finite bandwidth, send_batch must behave exactly like
        per-packet send (serialization spreads arrivals; tail drops)."""
        from repro.net.addr import Endpoint
        from repro.net.packet import PacketSlab
        from repro.net.pipe import Pipe
        from repro.sim.engine import Simulator

        def run(batched):
            sim = Simulator()
            slab = PacketSlab()
            pipe = Pipe(
                sim,
                "wire",
                prop_delay=5 * units.MICROSECONDS,
                bandwidth_bps=units.GIGABITS_PER_SECOND,
                queue_capacity=64,
                slab=slab,
            )
            src = slab.intern_endpoint(Endpoint("a", 1))
            dst = slab.intern_endpoint(Endpoint("b", 2))
            fid = slab.intern_flow(src, dst)
            arrivals = []
            pipe.connect(
                lambda h: (arrivals.append((sim.now, slab.seq[h])), slab.free(h))
            )
            handles = [
                slab.alloc(src, dst, fid, 0, s, 0, 200, None, 0)
                for s in range(100)
            ]
            if batched:
                accepted = pipe.send_batch(handles)
            else:
                accepted = sum(1 for h in handles if pipe.send(h))
            sim.run()
            return accepted, arrivals, pipe.stats.packets_dropped_queue

        assert run(True) == run(False)

    def test_bulk_drain_skipped_under_profiler(self):
        """A profiled run takes the per-packet path so attribution stays
        per-delivery; the result must still be identical."""
        from repro.obs.profiler import EngineProfiler

        plain = self._stream(batched=True)
        from repro.net.addr import Endpoint
        from repro.net.packet import PacketSlab
        from repro.net.pipe import Pipe
        from repro.sim.engine import Simulator

        sim = Simulator()
        profiler = EngineProfiler()
        sim.set_profiler(profiler)
        slab = PacketSlab()
        pipe = Pipe(sim, "bench", prop_delay=10 * units.MICROSECONDS, slab=slab)
        src = slab.intern_endpoint(Endpoint("a", 1))
        dst = slab.intern_endpoint(Endpoint("b", 2))
        fid = slab.intern_flow(src, dst)
        order = []

        def deliver(handle):
            order.append(slab.seq[handle])
            slab.free(handle)

        pipe.connect(deliver)
        pipe.connect_batch(lambda handles: pytest.fail("bulk path under profiler"))
        for wave in range(3):
            seqs = range(wave * 500, (wave + 1) * 500)
            pipe.send_batch(
                slab.alloc_batch(src, dst, fid, 0, seqs, 0, 100, None, 0)
            )
            sim.run()
        assert [s for s, _ in plain["order"]] == order
        assert sim.events_processed == plain["events"]
        assert profiler.events == sim.events_processed
