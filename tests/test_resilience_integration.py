"""End-to-end resilience-plane invariants (the ISSUE acceptance bar).

One full crash-fault scenario run, shared module-wide, backs the three
load-bearing claims:

1. a crash drives the ladder to FALLBACK within one evaluation period
   of the signal going invalid,
2. the loop returns to FEEDBACK after the server restarts, and
3. the controller never executes a ranking shift while any consulted
   estimate is distrusted ("never shift on a signal you don't trust").

A lossy-path run checks the retry budget's arithmetic bound, and a
fault-free run checks the plane is inert when nothing is wrong.
"""

import pytest

from repro.faults import parse_faults
from repro.harness.config import PolicyName, ScenarioConfig
from repro.harness.runner import run_scenario
from repro.resilience import ControllerMode, ResilienceConfig
from repro.units import MILLISECONDS, SECONDS


DURATION = 2 * SECONDS
CRASH_ONSET = DURATION // 3  # crash preset: dead for the middle third


def resilient_config(fault=None, **kwargs):
    defaults = dict(
        seed=1,
        duration=DURATION,
        n_clients=1,
        n_servers=2,
        policy=PolicyName.FEEDBACK,
        resilience=ResilienceConfig(enabled=True, health_checks=True),
        warmup=DURATION // 10,
    )
    if fault is not None:
        defaults["faults"] = parse_faults(fault, DURATION)
    defaults.update(kwargs)
    return ScenarioConfig(**defaults)


@pytest.fixture(scope="module")
def crash_result():
    return run_scenario(resilient_config("crash"))


@pytest.fixture(scope="module")
def lossy_result():
    return run_scenario(resilient_config("lossy_path"))


def mode_at(transitions, time):
    """Reconstruct the ladder's mode at ``time`` from its telemetry."""
    mode = ControllerMode.HOLD  # the ladder's starting posture
    for t in transitions:
        if t.time > time:
            break
        mode = t.to_mode
    return mode


class TestCrashDegradation:
    def test_crash_reaches_fallback_within_one_epoch_of_invalidation(
        self, crash_result
    ):
        """Silence invalidates invalid_after past the last sample; the
        last sample can lag onset by up to the retry deadline (pinned
        connections keep emitting packets until aborted), and the
        periodic check must then notice within a few periods."""
        fallback_at = crash_result.first_mode_entry("FALLBACK", after=CRASH_ONSET)
        assert fallback_at is not None, "crash never drove the ladder down"
        resilience = crash_result.scenario.config.resilience
        slack = (
            resilience.retry.deadline
            + 3 * resilience.ladder.check_interval
            + 20 * MILLISECONDS
        )
        assert fallback_at <= CRASH_ONSET + resilience.signal.invalid_after + slack

    def test_returns_to_feedback_after_restart(self, crash_result):
        fallback_at = crash_result.first_mode_entry("FALLBACK", after=CRASH_ONSET)
        recovered_at = crash_result.first_mode_entry("FEEDBACK", after=fallback_at)
        assert recovered_at is not None, "loop never recovered"
        restart_at = CRASH_ONSET + DURATION // 3
        assert recovered_at > restart_at

    def test_no_ranking_shift_on_distrusted_signal(self, crash_result):
        """The core invariant: every hysteresis-driven shift happened
        while the ladder trusted the whole pool (FEEDBACK mode)."""
        transitions = crash_result.mode_transitions()
        assert transitions
        for event in crash_result.scenario.feedback.shift_events():
            if event.reason in ("mode-change", "post-fallback-rebalance"):
                continue
            assert mode_at(transitions, event.time) is ControllerMode.FEEDBACK, (
                "shift at %d ns executed outside FEEDBACK mode" % event.time
            )

    def test_fallback_relaxed_weights_uniformly(self, crash_result):
        events = [
            e
            for e in crash_result.scenario.feedback.shift_events()
            if e.reason == "mode-change"
        ]
        assert events
        weights = set(events[0].weights_after.values())
        assert len(weights) == 1  # uniform

    def test_breaker_opened_and_reclosed(self, crash_result):
        from repro.resilience import BreakerState

        transitions = [
            t
            for t in crash_result.breaker_transitions()
            if t.backend == "server0"
        ]
        states = [t.to_state for t in transitions]
        assert BreakerState.OPEN in states
        assert transitions[-1].to_state is BreakerState.CLOSED

    def test_health_checker_saw_the_crash(self, crash_result):
        health = crash_result.scenario.health
        assert health is not None
        assert health.stats("server0").transitions >= 2  # down then up

    def test_requests_kept_completing(self, crash_result):
        """Graceful degradation, not an outage: the healthy server
        carries the pool through the crash window."""
        mid = [
            r
            for r in crash_result.records
            if CRASH_ONSET < r.completed_at < CRASH_ONSET + DURATION // 3
        ]
        assert len(mid) > 500
        assert all(r.server == "server1" for r in mid[50:])


class TestRetryBound:
    def test_retries_within_budget_bound(self, lossy_result):
        stats = lossy_result.retry_stats()
        assert stats is not None
        assert stats.first_attempts > 1000
        clients = lossy_result.scenario.clients
        bound = sum(
            c.retry_budget.bound(c.retry_stats.first_attempts) for c in clients
        )
        assert stats.retries <= bound

    def test_abandonment_accounting_consistent(self, lossy_result):
        stats = lossy_result.retry_stats()
        # Every deadline expiry ended in exactly one of: a scheduled
        # retry, a budget denial, or attempt exhaustion.
        assert stats.retries + stats.abandoned >= stats.deadline_expiries


class TestFaultFreeInertness:
    def test_plane_is_quiet_without_faults(self):
        result = run_scenario(
            resilient_config(duration=800 * MILLISECONDS, warmup=80 * MILLISECONDS)
        )
        # The ladder may visit HOLD when a lightly-weighted backend's
        # signal thins out (one client, few connections), but nothing
        # stronger: no pool-wide collapse, no breaker trips, no retry
        # traffic.
        transitions = result.mode_transitions()
        assert transitions[0].to_mode is ControllerMode.FEEDBACK
        assert not any(
            t.to_mode is ControllerMode.FALLBACK for t in transitions
        )
        assert result.breaker_transitions() == []
        stats = result.retry_stats()
        assert stats.retries == 0
        assert stats.deadline_expiries == 0
        assert stats.aborted_connections == 0

    def test_disabled_by_default(self):
        config = ScenarioConfig(
            seed=3,
            duration=200 * MILLISECONDS,
            n_servers=2,
            policy=PolicyName.FEEDBACK,
        )
        result = run_scenario(config)
        assert result.scenario.breakers is None
        assert result.scenario.health is None
        assert result.scenario.feedback.ladder is None
        assert result.mode_transitions() == []
        assert result.retry_stats() is None
