"""The α-shift controller."""

import pytest

from repro.core.controller import AlphaShiftController, ControllerConfig
from repro.core.estimator import BackendLatencyEstimator, EstimatorConfig
from repro.errors import ConfigError
from repro.lb.backend import Backend, BackendPool
from repro.units import MICROSECONDS, MILLISECONDS


def make(n=2, alpha=0.10, floor=0.02, min_interval=0, hysteresis=1.0,
         min_samples=1):
    pool = BackendPool([Backend("s%d" % i) for i in range(n)])
    estimator = BackendLatencyEstimator(EstimatorConfig(min_samples=min_samples))
    controller = AlphaShiftController(
        pool,
        estimator,
        ControllerConfig(
            alpha=alpha,
            weight_floor=floor,
            min_interval=min_interval,
            hysteresis_ratio=hysteresis,
        ),
    )
    return pool, estimator, controller


def feed(estimator, now, slow="s0", fast="s1", slow_lat=1000 * MICROSECONDS,
         fast_lat=100 * MICROSECONDS):
    estimator.observe(slow, now, slow_lat)
    estimator.observe(fast, now, fast_lat)


class TestShiftMechanics:
    def test_alpha_of_total_moves_from_worst(self):
        pool, estimator, controller = make(n=2, alpha=0.10)
        feed(estimator, now=0)
        event = controller.maybe_shift(now=0)
        assert event is not None
        # Total weight 2.0; alpha=0.1 -> shift 0.2.
        assert pool.weights() == {"s0": pytest.approx(0.8),
                                  "s1": pytest.approx(1.2)}
        assert event.from_backend == "s0"

    def test_shift_spread_equally_over_others(self):
        pool, estimator, controller = make(n=4, alpha=0.12)
        estimator.observe("s0", 0, 1000)
        for name in ("s1", "s2", "s3"):
            estimator.observe(name, 0, 100)
        controller.maybe_shift(0)
        weights = pool.weights()
        # 0.12 * 4 = 0.48 off s0; 0.16 onto each other.
        assert weights["s0"] == pytest.approx(4 - 0.48 - 3)
        for name in ("s1", "s2", "s3"):
            assert weights[name] == pytest.approx(1.16)

    def test_total_weight_conserved(self):
        pool, estimator, controller = make(n=3)
        estimator.observe("s0", 0, 1000)
        estimator.observe("s1", 0, 100)
        estimator.observe("s2", 0, 200)
        for now in range(5):
            feed(estimator, now)
            controller.maybe_shift(now)
        assert sum(pool.weights().values()) == pytest.approx(3.0)

    def test_no_shift_with_single_estimate(self):
        pool, estimator, controller = make()
        estimator.observe("s0", 0, 1000)
        assert controller.maybe_shift(0) is None

    def test_no_shift_when_equal(self):
        pool, estimator, controller = make()
        estimator.observe("s0", 0, 500)
        estimator.observe("s1", 0, 500)
        assert controller.maybe_shift(0) is None


class TestGuardRails:
    def test_weight_floor_never_starves(self):
        pool, estimator, controller = make(alpha=0.25, floor=0.05)
        for now in range(50):
            feed(estimator, now)
            controller.maybe_shift(now)
        weights = pool.weights()
        # Floor = 0.05 * total (2.0) = 0.1.
        assert weights["s0"] >= 0.1 - 1e-9
        assert weights["s0"] == pytest.approx(0.1)

    def test_min_interval_throttles(self):
        pool, estimator, controller = make(min_interval=10 * MILLISECONDS)
        feed(estimator, 0)
        assert controller.maybe_shift(0) is not None
        feed(estimator, 1 * MILLISECONDS)
        assert controller.maybe_shift(1 * MILLISECONDS) is None
        feed(estimator, 11 * MILLISECONDS)
        assert controller.maybe_shift(11 * MILLISECONDS) is not None

    def test_hysteresis_blocks_small_differences(self):
        pool, estimator, controller = make(hysteresis=1.5)
        estimator.observe("s0", 0, 120)
        estimator.observe("s1", 0, 100)
        assert controller.maybe_shift(0) is None  # 1.2x < 1.5x
        # Much later (>> tau), fresh samples dominate the time-decay EWMA.
        later = 200 * MILLISECONDS
        estimator.observe("s0", later, 200)
        estimator.observe("s1", later, 100)
        assert controller.maybe_shift(later) is not None

    def test_shift_events_recorded(self):
        pool, estimator, controller = make()
        feed(estimator, 0)
        controller.maybe_shift(0)
        assert controller.shift_count == 1
        event = controller.shifts[0]
        assert event.worst_estimate > event.best_estimate
        assert event.weights_after == pool.weights()


class TestValidation:
    def test_alpha_bounds(self):
        with pytest.raises(ConfigError):
            ControllerConfig(alpha=0.0).validate()
        with pytest.raises(ConfigError):
            ControllerConfig(alpha=1.0).validate()

    def test_floor_bounds(self):
        with pytest.raises(ConfigError):
            ControllerConfig(weight_floor=1.0).validate()
        with pytest.raises(ConfigError):
            ControllerConfig(weight_floor=-0.1).validate()

    def test_interval_bounds(self):
        with pytest.raises(ConfigError):
            ControllerConfig(min_interval=-1).validate()

    def test_hysteresis_bounds(self):
        with pytest.raises(ConfigError):
            ControllerConfig(hysteresis_ratio=0.9).validate()


class TestStaleGuard:
    """Never shift on a signal you don't trust — the controller-side
    backstop.  In a wired scenario the degradation ladder usually
    pre-empts this (it downgrades before the controller runs), but the
    guard must hold even when the controller is driven directly."""

    def attach_quality(self, estimator):
        from repro.resilience.quality import (
            SignalQualityConfig,
            SignalQualityTracker,
        )

        tracker = SignalQualityTracker(
            SignalQualityConfig(
                stale_after=50 * MILLISECONDS,
                invalid_after=200 * MILLISECONDS,
                min_samples=1,
            )
        )
        estimator.attach_quality(tracker)
        return tracker

    def test_declines_to_shift_on_stale_estimates(self):
        pool, estimator, controller = make()
        self.attach_quality(estimator)
        feed(estimator, now=0)
        stale_now = 60 * MILLISECONDS  # past stale_after, both stale
        assert controller.maybe_shift(stale_now) is None
        assert controller.stale_holds == 1
        assert pool.weights() == {"s0": 1.0, "s1": 1.0}  # frozen

    def test_one_stale_backend_is_enough_to_hold(self):
        """The consulted pair is worst/best; either one stale blocks."""
        pool, estimator, controller = make()
        self.attach_quality(estimator)
        feed(estimator, now=0)
        now = 60 * MILLISECONDS
        estimator.observe("s1", now, 100 * MICROSECONDS)  # s0 still stale
        assert controller.maybe_shift(now) is None
        assert controller.stale_holds == 1

    def test_shifts_again_once_signal_refreshes(self):
        pool, estimator, controller = make()
        self.attach_quality(estimator)
        feed(estimator, now=0)
        assert controller.maybe_shift(60 * MILLISECONDS) is None
        feed(estimator, now=61 * MILLISECONDS)
        event = controller.maybe_shift(61 * MILLISECONDS)
        assert event is not None
        assert event.reason == "hysteresis-pass"

    def test_pending_reason_tags_the_executed_shift(self):
        pool, estimator, controller = make()
        feed(estimator, 0)
        controller.pending_reason = "post-fallback-rebalance"
        event = controller.maybe_shift(0)
        assert event.reason == "post-fallback-rebalance"
        assert controller.pending_reason is None
        # Consumed: the next shift is a plain hysteresis pass again.
        feed(estimator, 1 * MILLISECONDS)
        event = controller.maybe_shift(1 * MILLISECONDS)
        assert event is not None and event.reason == "hysteresis-pass"
