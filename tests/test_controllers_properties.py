"""Invariants every registered control law must satisfy.

Parametrized over the registry — a newly registered law is picked up
and held to the same contract with no test changes:

* the pool's total weight is conserved by every update;
* no backend ever drops below its configured weight floor;
* a law is a deterministic function of its observation sequence.
"""

import random

import pytest

import repro.controllers as controllers
from repro.core.feedback import FeedbackConfig
from repro.core.estimator import BackendLatencyEstimator, EstimatorConfig
from repro.lb.backend import Backend, BackendPool
from repro.units import MILLISECONDS

N_SERVERS = 3
TOTAL = float(N_SERVERS)  # every backend starts at weight 1.0


def drive(name, seed=7, steps=60):
    """Run one law against a noisy synthetic latency trace.

    Returns the weight vector observed after every step (updated or
    not), so invariants are checked at every instant, not only on
    update boundaries.
    """
    pool = BackendPool([Backend("s%d" % i) for i in range(N_SERVERS)])
    estimator = BackendLatencyEstimator(EstimatorConfig(min_samples=1))
    config = FeedbackConfig()
    controller = controllers.create(name, pool, estimator, config)
    rng = random.Random(seed)
    history = []
    for step in range(1, steps + 1):
        now = step * 10 * MILLISECONDS
        # s0 is persistently slow with noise; the others hover near 100us.
        estimator.observe("s0", now, int(400_000 * (1 + rng.random())))
        estimator.observe("s1", now, int(100_000 * (1 + 0.1 * rng.random())))
        estimator.observe("s2", now, int(100_000 * (1 + 0.1 * rng.random())))
        controller.maybe_update(now)
        history.append(dict(pool.weights()))
    return controller, history


def floor_fraction(name, config):
    """The configured weight floor of one law (alpha keeps its own)."""
    if name == "alpha":
        return config.controller.weight_floor
    return getattr(config, name).weight_floor


@pytest.mark.parametrize("name", controllers.available())
class TestLawInvariants:
    def test_total_weight_conserved(self, name):
        _controller, history = drive(name)
        for weights in history:
            assert sum(weights.values()) == pytest.approx(TOTAL, rel=1e-6)

    def test_weight_floor_never_violated(self, name):
        config = FeedbackConfig()
        floor = floor_fraction(name, config) * TOTAL
        _controller, history = drive(name)
        for weights in history:
            for backend, value in weights.items():
                assert value >= floor - 1e-9, (backend, value)

    def test_slow_backend_loses_weight(self, name):
        _controller, history = drive(name)
        final = history[-1]
        # s0 is ~4x slower throughout; every law should route around it.
        assert final["s0"] < min(final["s1"], final["s2"])

    def test_deterministic_under_fixed_seed(self, name):
        controller_a, history_a = drive(name)
        controller_b, history_b = drive(name)
        assert history_a == history_b
        assert len(controller_a.updates) == len(controller_b.updates)
        assert [u.time for u in controller_a.updates] == [
            u.time for u in controller_b.updates
        ]

    def test_updates_record_executed_weights(self, name):
        controller, _history = drive(name)
        assert controller.updates, "%s never updated on a 4x spread" % name
        for update in controller.updates:
            assert update.weights_after
            assert sum(update.weights_after.values()) == pytest.approx(
                TOTAL, rel=1e-6
            )
