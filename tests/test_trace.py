"""Packet trace recorder."""

from repro.net.addr import Endpoint
from repro.net.packet import Packet
from repro.net.trace import PacketTrace


def make_packet():
    return Packet(src=Endpoint("a", 1), dst=Endpoint("b", 2))


class TestPacketTrace:
    def test_records_in_order(self):
        trace = PacketTrace()
        trace.record(10, "p1", make_packet())
        trace.record(20, "p2", make_packet())
        times = [r.time for r in trace]
        assert times == [10, 20]

    def test_limit_truncates(self):
        trace = PacketTrace(limit=2)
        for i in range(5):
            trace.record(i, "p", make_packet())
        assert len(trace) == 2
        assert trace.truncated

    def test_filter_and_on_pipe(self):
        trace = PacketTrace()
        trace.record(1, "a->b", make_packet())
        trace.record(2, "b->c", make_packet())
        assert len(trace.on_pipe("a->b")) == 1
        assert len(trace.filter(lambda r: r.time > 1)) == 1

    def test_dump_truncation_note(self):
        trace = PacketTrace()
        for i in range(5):
            trace.record(i, "p", make_packet())
        out = trace.dump(limit=2)
        assert "3 more" in out

    def test_record_format(self):
        trace = PacketTrace()
        trace.record(123, "a->b", make_packet())
        line = next(iter(trace)).format()
        assert "a->b" in line and "123" in line


class TestDropAccounting:
    def test_dropped_counts_past_limit(self):
        trace = PacketTrace(limit=2)
        for i in range(5):
            trace.record(i, "p", make_packet())
        assert trace.dropped == 3
        assert trace.limit == 2

    def test_unlimited_trace_never_drops(self):
        trace = PacketTrace()
        for i in range(10):
            trace.record(i, "p", make_packet())
        assert trace.dropped == 0
        assert not trace.truncated
        assert trace.limit is None
