"""Fault specs: validation, selectors, and window expansion."""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    CrashRestartFault,
    DelayFault,
    FAULT_KINDS,
    FaultSchedule,
    JitterFault,
    LossFault,
    ServerPauseFault,
    ServerSlowdownFault,
    ThrottleFault,
)
from repro.faults.model import replace_window
from repro.units import MILLISECONDS, SECONDS


class TestValidation:
    def test_zero_duration_rejected(self):
        with pytest.raises(ConfigError, match="duration must be positive"):
            DelayFault(start=0, duration=0).validate()

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigError):
            LossFault(start=0, duration=-5).validate()

    def test_none_duration_means_until_run_end(self):
        DelayFault(start=0, duration=None).validate()  # no raise

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigError, match="start must be >= 0"):
            DelayFault(start=-1).validate()

    def test_recurring_needs_finite_duration(self):
        with pytest.raises(ConfigError, match="finite duration"):
            DelayFault(period=1 * SECONDS).validate()

    def test_duration_longer_than_period_rejected(self):
        with pytest.raises(ConfigError, match="exceeds its period"):
            DelayFault(duration=200, period=100).validate()

    def test_empty_node_glob_rejected(self):
        with pytest.raises(ConfigError, match="node glob"):
            DelayFault(node="").validate()

    def test_unknown_direction_rejected(self):
        with pytest.raises(ConfigError, match="unknown direction"):
            DelayFault(direction="server->lb").validate()

    @pytest.mark.parametrize(
        "fault",
        [
            DelayFault(extra=-1),
            JitterFault(amplitude=0),
            LossFault(prob=0.0),
            LossFault(prob=1.5),
            ThrottleFault(bandwidth_bps=0),
            ServerSlowdownFault(factor=0.0),
            ServerSlowdownFault(factor=-2.0),
        ],
    )
    def test_bad_magnitudes_rejected(self, fault):
        with pytest.raises(ConfigError):
            fault.validate()

    def test_all_kinds_registered(self):
        assert set(FAULT_KINDS) == {
            "delay", "jitter", "loss", "throttle", "slowdown", "pause",
            "crash", "partition",
        }


class TestSelectors:
    def test_glob_matching(self):
        fault = DelayFault(node="server*")
        assert fault.matches("server0")
        assert fault.matches("server12")
        assert not fault.matches("client0")

    def test_exact_name(self):
        fault = CrashRestartFault(node="server1")
        assert fault.matches("server1")
        assert not fault.matches("server10")

    def test_describe_mentions_kind_and_node(self):
        text = ServerPauseFault(node="server0").describe()
        assert "pause" in text and "server0" in text


class TestScheduleWindows:
    def test_one_shot_window(self):
        schedule = FaultSchedule(
            [DelayFault(start=100, duration=50, extra=7)]
        )
        windows = schedule.windows(1000)
        assert len(windows) == 1
        assert (windows[0].start, windows[0].end) == (100, 150)
        assert windows[0].duration == 50

    def test_open_ended_window_has_no_end(self):
        (window,) = FaultSchedule([DelayFault(start=100)]).windows(1000)
        assert window.end is None
        assert window.covers(999_999_999)

    def test_recurring_expansion_stops_at_horizon(self):
        fault = ServerSlowdownFault(start=100, duration=10, period=100)
        windows = FaultSchedule([fault]).windows(350)
        assert [(w.start, w.end) for w in windows] == [
            (100, 110), (200, 210), (300, 310)
        ]

    def test_window_end_may_exceed_horizon(self):
        # The revert past the horizon simply never fires.
        fault = DelayFault(start=900, duration=500)
        (window,) = FaultSchedule([fault]).windows(1000)
        assert window.end == 1400

    def test_same_instant_windows_keep_declaration_order(self):
        a = DelayFault(start=100, extra=1)
        b = LossFault(start=100, prob=0.5)
        windows = FaultSchedule([a, b]).windows(1000)
        assert [w.fault for w in windows] == [a, b]

    def test_start_at_or_after_horizon_rejected(self):
        with pytest.raises(ConfigError, match="at/after the run end"):
            FaultSchedule([DelayFault(start=1000)]).windows(1000)

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule([]).windows(0)

    def test_non_faultspec_entry_rejected(self):
        with pytest.raises(ConfigError, match="FaultSpec"):
            FaultSchedule(["delay"])

    def test_schedule_validates_entries(self):
        with pytest.raises(ConfigError):
            FaultSchedule([DelayFault(duration=0)])


class TestReplaceWindow:
    def test_preserves_magnitude_and_target(self):
        fault = ServerSlowdownFault(
            start=0, duration=10, period=20, factor=3.0, node="server1"
        )
        moved = replace_window(fault, 500, 50)
        assert isinstance(moved, ServerSlowdownFault)
        assert (moved.start, moved.duration, moved.period) == (500, 50, None)
        assert moved.factor == 3.0
        assert moved.node == "server1"


class TestConfigIntegration:
    def test_scenario_config_validates_faults(self):
        from repro.harness.config import ScenarioConfig

        config = ScenarioConfig(
            duration=1 * SECONDS, faults=[DelayFault(duration=0)]
        )
        with pytest.raises(ConfigError):
            config.validate()

    def test_fault_starting_after_run_rejected(self):
        from repro.harness.config import ScenarioConfig

        config = ScenarioConfig(
            duration=1 * SECONDS, faults=[DelayFault(start=2 * SECONDS)]
        )
        with pytest.raises(ConfigError, match="after the run ends"):
            config.validate()

    def test_legacy_injection_converts_to_fault(self):
        from repro.harness.config import DelayInjection

        with pytest.deprecated_call():
            injection = DelayInjection(
                at=100, server="server0", extra=1 * MILLISECONDS, end=400
            )
        fault = injection.to_fault()
        assert isinstance(fault, DelayFault)
        assert (fault.start, fault.duration) == (100, 300)
        assert fault.extra == 1 * MILLISECONDS
        assert fault.node == "server0"

    def test_open_ended_injection_converts_to_open_ended_fault(self):
        from repro.harness.config import DelayInjection

        with pytest.deprecated_call():
            injection = DelayInjection(at=100, server="server0", extra=5)
        assert injection.to_fault().duration is None
