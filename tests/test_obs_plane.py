"""The observability plane wired into real scenarios."""

import functools

import pytest

from repro.errors import ConfigError
from repro.faults import DelayFault
from repro.harness.config import PolicyName, ScenarioConfig
from repro.harness.runner import run_scenario
from repro.obs import ObsConfig, parse_prometheus_text, site_name
from repro.obs.profiler import EngineProfiler
from repro.resilience import ResilienceConfig
from repro.units import MILLISECONDS


def run(obs=None, policy=PolicyName.FEEDBACK, **overrides):
    config = ScenarioConfig(
        seed=9,
        duration=120 * MILLISECONDS,
        policy=policy,
        obs=obs or ObsConfig(),
        faults=[DelayFault(start=60 * MILLISECONDS, node="server0", extra=MILLISECONDS)],
        **overrides,
    )
    return run_scenario(config)


def record_key(record):
    # request_id is a process-global counter, not simulation state.
    return (
        record.sent_at,
        record.completed_at,
        record.latency,
        record.server,
        record.op,
        record.local_port,
    )


class TestByteIdentity:
    def test_enabled_plane_changes_nothing(self):
        off = run()
        on = run(
            ObsConfig(enabled=True, profiling=True, capture_packets=True)
        )
        assert [record_key(r) for r in off.records] == [
            record_key(r) for r in on.records
        ]
        assert [e.time for e in off.scenario.feedback.shift_events()] == [
            e.time for e in on.scenario.feedback.shift_events()
        ]
        assert off.wall_events == on.wall_events

    def test_disabled_plane_is_structurally_absent(self):
        result = run()
        assert result.scenario.obs is None
        assert result.scenario.trace is None


class TestMetricsPillar:
    def test_per_backend_per_delta_sample_counters(self):
        result = run(ObsConfig(enabled=True))
        registry = result.scenario.obs.registry
        samples = registry.get("repro_tlb_samples_total")
        counted = {
            (labels["backend"], labels["delta_us"]): child.value
            for labels, child in samples.children()
        }
        assert counted  # at least one (backend, delta) pair observed
        assert sum(counted.values()) == result.scenario.feedback.sample_count

    def test_lb_packet_counters_match_dataplane(self):
        result = run(ObsConfig(enabled=True))
        registry = result.scenario.obs.registry
        packets = registry.get("repro_lb_packets_total")
        by_backend = {
            labels["backend"]: child.value
            for labels, child in packets.children()
        }
        assert by_backend == {
            name: float(count)
            for name, count in (
                result.scenario.lb.stats.per_backend_packets.items()
            )
        }

    def test_shift_counter_matches_controller(self):
        result = run(ObsConfig(enabled=True))
        registry = result.scenario.obs.registry
        shifts = registry.get("repro_weight_shifts_total")
        total = sum(child.value for _labels, child in shifts.children())
        assert total == len(result.scenario.feedback.shift_events())

    def test_prometheus_export_parses_and_has_engine_stats(self):
        result = run(ObsConfig(enabled=True))
        text = result.scenario.obs.registry.to_prometheus()
        families = parse_prometheus_text(text)
        assert families["repro_sim_events_processed"]["samples"][0][2] == (
            result.wall_events
        )
        assert "repro_backend_weight" in families
        assert "repro_pipe_dropped_packets" in families

    def test_live_and_pending_event_gauges(self):
        result = run(ObsConfig(enabled=True))
        text = result.scenario.obs.registry.to_prometheus()
        families = parse_prometheus_text(text)
        sim = result.scenario.sim
        live = families["repro_sim_live_events"]["samples"][0][2]
        pending = families["repro_sim_pending_events"]["samples"][0][2]
        peak_load = families["repro_sim_peak_load"]["samples"][0][2]
        # The live gauge reports *outstanding work* — live events plus
        # packets parked behind batch-drain pumps — not raw heap entries,
        # so a 1k-packet batch never reads as depth 1.
        assert live == sim.pending_load
        assert live >= sim.live_events
        assert pending == sim.pending_events
        assert peak_load == sim.peak_load

    def test_report_footer_shows_live_and_pending(self):
        result = run(ObsConfig(enabled=True))
        sim = result.scenario.sim
        assert "%d live / %d pending at end" % (
            sim.live_events,
            sim.pending_events,
        ) in result.report()

    def test_resilience_instruments_present(self):
        result = run(
            ObsConfig(enabled=True),
            resilience=ResilienceConfig(enabled=True),
        )
        registry = result.scenario.obs.registry
        assert registry.get("repro_mode_transitions_total") is not None
        # The mode gauge is seeded at attach (ladder starts in HOLD=1).
        mode = registry.get("repro_controller_mode")
        assert mode.value in (0.0, 1.0, 2.0)

    def test_metrics_only_config_skips_tracer(self):
        result = run(ObsConfig(enabled=True, tracing=False))
        assert result.scenario.obs.registry is not None
        assert result.scenario.obs.tracer is None


class TestTracingPillar:
    def test_spans_recorded_on_real_run(self):
        result = run(ObsConfig(enabled=True))
        tracer = result.scenario.obs.tracer
        assert tracer.sends and tracer.routes and tracer.samples
        assert tracer.responses

    def test_sample_spans_match_feedback_samples(self):
        result = run(ObsConfig(enabled=True))
        tracer = result.scenario.obs.tracer
        feedback = result.scenario.feedback
        assert len(tracer.samples) == len(feedback.samples)
        assert [s.time for s in tracer.samples] == [
            s.time for s in feedback.samples
        ]

    def test_shift_attribution_on_real_run(self):
        result = run(ObsConfig(enabled=True))
        tracer = result.scenario.obs.tracer
        shifts = result.scenario.feedback.shift_events()
        assert shifts
        window = result.scenario.feedback.estimator.config.window
        contributing = tracer.contributing_samples(shifts[0], window)
        assert contributing
        assert all(s.time <= shifts[0].time for s in contributing)
        involved = {shifts[0].from_backend, shifts[0].best_backend}
        assert {s.backend for s in contributing} <= involved


class TestProfilingPillar:
    def test_profiler_aggregates_sites(self):
        result = run(ObsConfig(enabled=True, profiling=True))
        profiler = result.scenario.obs.profiler
        assert profiler.events == result.wall_events
        assert profiler.top_sites()
        assert profiler.events_per_second() > 0

    def test_report_includes_profile_section(self):
        result = run(ObsConfig(enabled=True, profiling=True))
        report = result.report()
        assert "profile:" in report
        assert "ns/call" in report

    def test_site_name_unwraps_partials_and_methods(self):
        class Thing:
            def method(self):
                pass

        thing = Thing()
        bound = site_name(thing.method)
        wrapped = site_name(functools.partial(functools.partial(thing.method)))
        assert bound == wrapped
        assert bound.endswith("Thing.method")

    def test_profiler_run_charges_errors_too(self):
        profiler = EngineProfiler()

        def boom():
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            profiler.run(boom)
        assert profiler.events == 1


class TestPacketCapture:
    def test_trace_attached_and_truncation_surfaced(self):
        result = run(
            ObsConfig(enabled=True, capture_packets=True, packet_trace_limit=10)
        )
        trace = result.scenario.trace
        assert trace is not None
        assert len(trace) == 10
        assert trace.dropped > 0
        report = result.report()
        assert "dropped past limit=10" in report

    def test_unlimited_trace_reports_no_drops(self):
        result = run(
            ObsConfig(
                enabled=True, capture_packets=True, packet_trace_limit=None
            )
        )
        assert result.scenario.trace.dropped == 0
        assert "packet trace:" in result.report()


class TestEngineFooter:
    def test_footer_always_present(self):
        result = run()  # obs fully disabled
        report = result.report()
        assert "engine: %d events processed" % result.wall_events in report
        assert "peak queue depth" in report

    def test_peak_queue_depth_positive(self):
        result = run()
        assert result.scenario.sim.peak_queue_depth > 0
        assert result.wall_seconds > 0


class TestObsConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ObsConfig(packet_trace_limit=0).validate()
        with pytest.raises(ConfigError):
            ObsConfig(max_trace_events=0).validate()
        ObsConfig(packet_trace_limit=None).validate()

    def test_scenario_config_validates_obs(self):
        config = ScenarioConfig(obs=ObsConfig(max_trace_events=-1))
        with pytest.raises(ConfigError):
            config.validate()
