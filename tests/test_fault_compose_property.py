"""Property test: random overlapping fault schedules revert to baseline.

The injector's contract is a composition law per knob (delays add,
loss composes as independent segments, pause/crash/partition refcount,
…) plus one global promise: when every window has expired, every knob
is back at its pre-chaos baseline *exactly* — no residue, regardless
of how windows overlapped or in which order they expired.  Hypothesis
drives that promise across randomized schedules drawn from the full
fault vocabulary.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    CrashRestartFault,
    DelayFault,
    JitterFault,
    LossFault,
    PartitionFault,
    ServerPauseFault,
    ServerSlowdownFault,
    ThrottleFault,
)
from repro.harness.config import ScenarioConfig
from repro.harness.scenario import build_scenario
from repro.units import MILLISECONDS, SECONDS

MS = MILLISECONDS
DURATION = 1 * SECONDS
#: Every window must expire by here, leaving slack before run end.
LAST_END = 900 * MS


@st.composite
def fault_spec(draw):
    kind = draw(
        st.sampled_from(
            (
                "delay",
                "jitter",
                "loss",
                "throttle",
                "slowdown",
                "pause",
                "crash",
                "partition",
            )
        )
    )
    start = draw(st.integers(min_value=10, max_value=700)) * MS
    duration = min(
        draw(st.integers(min_value=10, max_value=500)) * MS,
        LAST_END - start,
    )
    node = "server%d" % draw(st.integers(min_value=0, max_value=1))
    window = dict(start=start, duration=duration, node=node)
    if kind == "delay":
        return DelayFault(extra=draw(st.integers(1, 2000)) * 1000, **window)
    if kind == "jitter":
        return JitterFault(amplitude=draw(st.integers(1, 500)) * 1000, **window)
    if kind == "loss":
        return LossFault(prob=draw(st.floats(0.01, 0.5)), **window)
    if kind == "throttle":
        return ThrottleFault(
            bandwidth_bps=draw(st.integers(1, 50)) * 10_000_000, **window
        )
    if kind == "slowdown":
        return ServerSlowdownFault(factor=draw(st.floats(1.5, 16.0)), **window)
    if kind == "pause":
        return ServerPauseFault(**window)
    if kind == "crash":
        return CrashRestartFault(**window)
    return PartitionFault(**window)


@settings(max_examples=25, deadline=None)
@given(st.lists(fault_spec(), min_size=1, max_size=5))
def test_random_schedules_compose_and_revert_to_exact_baseline(faults):
    scenario = build_scenario(
        ScenarioConfig(duration=DURATION, n_servers=2, faults=faults)
    )
    # No client traffic: the simulator runs only the injector's apply/
    # revert events, so the assertion isolates knob state exactly.
    scenario.sim.run_until(DURATION)

    for pipe in scenario.network.pipes().values():
        assert pipe.extra_delay == 0
        assert pipe.extra_jitter is None
        assert pipe.drop_prob == 0.0
        assert pipe._bandwidth_override is None
        assert not pipe.partitioned
    for server in scenario.servers:
        assert server.service_multiplier == 1.0
        assert not server.paused
    for backend in scenario.pool.names():
        assert scenario.pool.get(backend).healthy


@settings(max_examples=10, deadline=None)
@given(
    st.lists(fault_spec(), min_size=2, max_size=4),
    st.integers(min_value=1, max_value=100),
)
def test_mid_run_knobs_stay_in_legal_ranges(faults, probe_ms):
    """At an arbitrary mid-run instant the composed knobs are sane:
    never negative delay, loss stays a probability, caps never exceed
    the configured wire speed."""
    scenario = build_scenario(
        ScenarioConfig(duration=DURATION, n_servers=2, faults=faults)
    )
    scenario.sim.run_until(probe_ms * 9 * MS)
    for pipe in scenario.network.pipes().values():
        assert pipe.extra_delay >= 0
        assert 0.0 <= pipe.drop_prob <= 1.0
        if pipe._bandwidth_override is not None:
            assert 0 < pipe._bandwidth_override <= pipe.bandwidth_bps
    for server in scenario.servers:
        assert server.service_multiplier >= 1.0
