"""Backend pool."""

import pytest

from repro.errors import BalancerError
from repro.lb.backend import Backend, BackendPool


class TestBackend:
    def test_defaults(self):
        backend = Backend("s0")
        assert backend.weight == 1.0
        assert backend.healthy

    def test_validation(self):
        with pytest.raises(BalancerError):
            Backend("")
        with pytest.raises(BalancerError):
            Backend("s0", weight=-1)


class TestPoolMembership:
    def test_add_and_get(self):
        pool = BackendPool([Backend("a"), Backend("b")])
        assert len(pool) == 2
        assert pool.get("a").name == "a"
        assert "a" in pool
        assert "z" not in pool

    def test_duplicate_rejected(self):
        pool = BackendPool([Backend("a")])
        with pytest.raises(BalancerError):
            pool.add(Backend("a"))

    def test_remove(self):
        pool = BackendPool([Backend("a"), Backend("b")])
        pool.remove("a")
        assert "a" not in pool
        with pytest.raises(BalancerError):
            pool.remove("a")

    def test_names_insertion_ordered(self):
        pool = BackendPool([Backend("z"), Backend("a"), Backend("m")])
        assert pool.names() == ["z", "a", "m"]

    def test_unknown_get_rejected(self):
        with pytest.raises(BalancerError):
            BackendPool().get("ghost")


class TestWeightsAndHealth:
    def test_set_weight(self):
        pool = BackendPool([Backend("a")])
        pool.set_weight("a", 2.5)
        assert pool.weights() == {"a": 2.5}

    def test_negative_weight_rejected(self):
        pool = BackendPool([Backend("a")])
        with pytest.raises(BalancerError):
            pool.set_weight("a", -0.1)
        with pytest.raises(BalancerError):
            pool.set_weights({"a": -1.0})

    def test_healthy_filters(self):
        pool = BackendPool([Backend("a"), Backend("b"), Backend("c", weight=0)])
        pool.set_healthy("b", False)
        assert [b.name for b in pool.healthy()] == ["a"]

    def test_set_weights_atomic_notification(self):
        pool = BackendPool([Backend("a"), Backend("b")])
        calls = []
        pool.on_change(lambda: calls.append(1))
        pool.set_weights({"a": 0.5, "b": 1.5})
        assert len(calls) == 1

    def test_listeners_fire_on_membership_change(self):
        pool = BackendPool()
        calls = []
        pool.on_change(lambda: calls.append(1))
        pool.add(Backend("a"))
        pool.remove("a")
        assert len(calls) == 2
