"""PartitionFault: both-direction cut, revert, presets, dict round trip."""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    PRESETS,
    PartitionFault,
    ServerSlowdownFault,
    fault_from_dict,
    fault_to_dict,
    preset,
)
from repro.harness.config import PolicyName, ScenarioConfig
from repro.harness.runner import run_scenario
from repro.harness.scenario import build_scenario
from repro.units import MILLISECONDS, SECONDS

MS = MILLISECONDS


def built(*faults, **kwargs):
    defaults = dict(duration=1 * SECONDS, n_servers=2, faults=list(faults))
    defaults.update(kwargs)
    return build_scenario(ScenarioConfig(**defaults))


class TestPartitionKnob:
    def test_every_pipe_touching_the_node_goes_dark_and_reverts(self):
        scenario = built(
            PartitionFault(start=100 * MS, duration=200 * MS, node="server0")
        )
        sim = scenario.sim
        pipes = scenario.network.pipes()
        touching = {
            ends: pipe
            for ends, pipe in pipes.items()
            if "server0" in ends
        }
        others = {
            ends: pipe
            for ends, pipe in pipes.items()
            if "server0" not in ends
        }
        assert touching and others
        # Both directions: the LB→server pipe and server0's return
        # pipes are all in the touching set.
        assert any(ends[0] == "server0" for ends in touching)
        assert any(ends[1] == "server0" for ends in touching)

        sim.run_until(150 * MS)
        assert all(pipe.partitioned for pipe in touching.values())
        assert not any(pipe.partitioned for pipe in others.values())
        sim.run_until(350 * MS)
        assert not any(pipe.partitioned for pipe in pipes.values())

    def test_overlapping_partitions_refcount(self):
        scenario = built(
            PartitionFault(start=100 * MS, duration=300 * MS, node="server0"),
            PartitionFault(start=200 * MS, duration=100 * MS, node="server0"),
        )
        sim = scenario.sim
        pipe = scenario.network.pipe("lb", "server0")
        sim.run_until(250 * MS)
        assert pipe.partitioned
        sim.run_until(350 * MS)  # inner window expired, outer still active
        assert pipe.partitioned
        sim.run_until(450 * MS)
        assert not pipe.partitioned

    def test_no_matching_node_raises(self):
        with pytest.raises(ConfigError):
            built(
                PartitionFault(start=100 * MS, duration=100 * MS, node="nope")
            )

    def test_partition_drops_are_counted_and_reported(self):
        config = ScenarioConfig(
            duration=1 * SECONDS,
            n_servers=2,
            policy=PolicyName.MAGLEV,
            faults=[
                PartitionFault(start=300 * MS, duration=300 * MS, node="server0")
            ],
        )
        result = run_scenario(config)
        assert result.partition_drops() > 0
        assert "partition=%d" % result.partition_drops() in result.report()

    def test_reports_omit_partition_count_when_zero(self):
        config = ScenarioConfig(duration=500 * MS, n_servers=2)
        result = run_scenario(config)
        assert result.partition_drops() == 0
        assert "partition=" not in result.report()


class TestPresets:
    def test_gray_failure_slows_the_server_but_keeps_probes_passing(self):
        faults = preset("gray_failure", 2 * SECONDS)
        assert len(faults) == 1
        fault = faults[0]
        # Gray failure: the server degrades but stays up — the fault is
        # a slowdown, never a crash/partition, so health probes pass.
        assert isinstance(fault, ServerSlowdownFault)
        assert fault.node == "server0"
        assert fault.factor > 1
        assert fault.start == 2 * SECONDS // 4
        assert fault.duration == 2 * SECONDS // 2

    def test_partition_preset_shape(self):
        faults = preset("partition", 3 * SECONDS)
        assert len(faults) == 1
        assert isinstance(faults[0], PartitionFault)
        assert faults[0].node == "server0"
        assert faults[0].duration == 3 * SECONDS // 3

    def test_presets_registered(self):
        assert "gray_failure" in PRESETS
        assert "partition" in PRESETS


class TestDictRoundTrip:
    def test_round_trip_preserves_every_field(self):
        fault = PartitionFault(start=123, duration=456, node="server*")
        tree = fault_to_dict(fault)
        assert tree["kind"] == "partition"
        assert fault_from_dict(tree) == fault

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            fault_from_dict({"kind": "gremlin"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown field"):
            fault_from_dict({"kind": "partition", "blast_radius": 3})

    def test_invalid_magnitude_rejected(self):
        with pytest.raises(ConfigError):
            fault_from_dict({"kind": "loss", "prob": 2.0})

    def test_missing_kind_rejected(self):
        with pytest.raises(ConfigError, match="kind"):
            fault_from_dict({"node": "server0"})
