"""Property tests for incremental Maglev rebuilds (the fleet plane's
membership-churn path).

The contract under test, in rough order of importance:

* an incremental patch moves a **bounded** number of slots — the
  apportionment delta, not the whole table;
* the patched table satisfies the same invariants as a full build
  (full, targets met, deterministic);
* ``last_moved`` is *exact*: it equals the number of slots whose owner
  actually differs from the previous table;
* established flows never remap — the dataplane consults conntrack
  before the table, so a pinned flow survives any rebuild (this extends
  ``tests/test_churn.py``'s affinity invariants down to the unit layer).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lb.conntrack import ConnTrack
from repro.lb.maglev import MaglevTable
from repro.net.addr import FlowKey

SIZES = (53, 101, 211)

sizes = st.sampled_from(SIZES)
counts = st.integers(min_value=1, max_value=12)
seeds = st.integers(min_value=0, max_value=9)


def names(count, generation=0):
    return ["server%d-%d" % (generation, i) for i in range(count)]


def weights(name_list):
    return {name: 1.0 for name in name_list}


def snapshot(table):
    return list(table._table)


class TestInvariants:
    @given(size=sizes, n=counts)
    @settings(max_examples=30, deadline=None)
    def test_first_build_matches_full_build(self, size, n):
        incremental = MaglevTable(size, incremental=True)
        full = MaglevTable(size)
        incremental.build(weights(names(n)))
        full.build(weights(names(n)))
        assert snapshot(incremental) == snapshot(full)

    @given(size=sizes, n=counts, extra=st.integers(min_value=1, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_patched_table_is_full_and_on_target(self, size, n, extra):
        table = MaglevTable(size, incremental=True)
        table.build(weights(names(n)))
        grown = names(n + extra)
        table.build(weights(grown))
        cells = snapshot(table)
        assert None not in cells
        counts_by_owner = {name: cells.count(name) for name in grown}
        assert counts_by_owner == table.slot_counts()
        assert sum(counts_by_owner.values()) == size

    @given(size=sizes, n=counts)
    @settings(max_examples=30, deadline=None)
    def test_add_one_moves_a_bounded_fraction(self, size, n):
        table = MaglevTable(size, incremental=True)
        table.build(weights(names(n)))
        before = snapshot(table)
        table.build(weights(names(n + 1)))
        moved = sum(1 for a, b in zip(before, snapshot(table)) if a != b)
        # The newcomer's apportionment share, plus remainder slack.
        assert moved == table.last_moved
        assert moved <= size // (n + 1) + n + 2

    @given(size=sizes, n=st.integers(min_value=2, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_remove_one_moves_only_the_victims_share(self, size, n):
        all_names = names(n)
        table = MaglevTable(size, incremental=True)
        table.build(weights(all_names))
        victim_share = table.slot_counts()[all_names[-1]]
        before = snapshot(table)
        table.build(weights(all_names[:-1]))
        after = snapshot(table)
        moved = sum(1 for a, b in zip(before, after) if a != b)
        assert moved == table.last_moved
        # Exactly the departed backend's slots change owner, plus any
        # survivor-to-survivor rebalance from the apportionment shift.
        assert victim_share <= moved <= size // n + n + 2
        assert all_names[-1] not in after

    @given(size=sizes, n=counts, shift=st.floats(min_value=1.5, max_value=8.0))
    @settings(max_examples=20, deadline=None)
    def test_weight_shift_patch_meets_targets(self, size, n, shift):
        all_names = names(n)
        table = MaglevTable(size, incremental=True)
        table.build(weights(all_names))
        shifted = weights(all_names)
        shifted[all_names[0]] = shift
        table.build(shifted)
        # The patched distribution equals the apportionment a full build
        # would compute for the same weights.
        reference = MaglevTable(size)
        reference.build(shifted)
        assert table.slot_counts() == reference.slot_counts()
        assert None not in snapshot(table)

    @given(
        size=sizes,
        steps=st.lists(
            st.integers(min_value=1, max_value=10), min_size=2, max_size=6
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_membership_walk_is_deterministic(self, size, steps):
        """Two tables replaying the same resize sequence stay identical."""
        first = MaglevTable(size, incremental=True)
        second = MaglevTable(size, incremental=True)
        for count in steps:
            first.build(weights(names(count)))
            second.build(weights(names(count)))
            assert snapshot(first) == snapshot(second)
            assert first.last_moved == second.last_moved


class TestEstablishedFlows:
    """The churn invariant at unit scope: pinned flows never move."""

    @given(size=sizes, n=st.integers(min_value=2, max_value=8), seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_conntrack_pins_survive_any_rebuild(self, size, n, seed):
        table = MaglevTable(size, incremental=True)
        conntrack = ConnTrack()
        initial = names(n)
        table.build(weights(initial))

        # Establish flows the way the dataplane does: route via the
        # table once, then pin in conntrack.
        flows = {}
        for i in range(64):
            flow = FlowKey("client%d" % seed, 1000 + i, "vip", 1)
            backend = table.lookup_flow(str(flow))
            conntrack.insert(flow, backend, now=i)
            flows[flow] = backend

        # Scale out, shift a weight, then scale in — three rebuilds.
        table.build(weights(names(n + 3)))
        shifted = weights(names(n + 3))
        shifted[initial[0]] = 4.0
        table.build(shifted)
        table.build(weights(names(max(2, n - 1), generation=0)))

        # The dataplane consults conntrack first: every established
        # flow still lands on its original backend.
        for i, (flow, backend) in enumerate(flows.items()):
            assert conntrack.lookup(flow, now=1000 + i) == backend

    @given(size=sizes, n=st.integers(min_value=2, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_unpinned_remap_set_equals_moved_slots(self, size, n):
        """A flow's route changes iff its slot changed owner — there is
        no hidden remapping beyond ``last_moved``."""
        table = MaglevTable(size, incremental=True)
        table.build(weights(names(n)))
        probes = ["flow-%d" % i for i in range(256)]
        before = {p: table.lookup_flow(p) for p in probes}
        before_cells = snapshot(table)
        table.build(weights(names(n + 1)))
        after_cells = snapshot(table)
        moved_slots = {
            i
            for i, (a, b) in enumerate(zip(before_cells, after_cells))
            if a != b
        }
        from repro.lb.maglev import _stable_hash

        for probe in probes:
            slot = _stable_hash(probe, b"maglev-flow") % size
            changed = table.lookup_flow(probe) != before[probe]
            assert changed == (slot in moved_slots)
