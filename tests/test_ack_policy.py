"""ACK generation policies."""

import pytest

from repro.sim.engine import Simulator
from repro.transport.ack_policy import DelayedAck, ImmediateAck
from repro.units import MILLISECONDS


class TestImmediateAck:
    def test_acks_every_segment(self, sim):
        acks = []
        policy = ImmediateAck()
        policy.attach(sim, lambda: acks.append(sim.now))
        policy.on_data(in_order=True)
        policy.on_data(in_order=True)
        assert len(acks) == 2

    def test_acks_out_of_order_too(self, sim):
        acks = []
        policy = ImmediateAck()
        policy.attach(sim, lambda: acks.append(sim.now))
        policy.on_data(in_order=False)
        assert len(acks) == 1


class TestDelayedAck:
    def make(self, sim, timeout=40 * MILLISECONDS, every=2):
        acks = []
        policy = DelayedAck(timeout=timeout, every=every)
        policy.attach(sim, lambda: acks.append(sim.now))
        return policy, acks

    def test_single_segment_waits_for_timer(self, sim):
        policy, acks = self.make(sim, timeout=10 * MILLISECONDS)
        policy.on_data(in_order=True)
        assert acks == []
        sim.run()
        assert acks == [10 * MILLISECONDS]

    def test_second_segment_flushes_immediately(self, sim):
        policy, acks = self.make(sim)
        policy.on_data(in_order=True)
        policy.on_data(in_order=True)
        assert len(acks) == 1
        sim.run()
        assert len(acks) == 1  # timer was cancelled

    def test_out_of_order_flushes(self, sim):
        policy, acks = self.make(sim)
        policy.on_data(in_order=False)
        assert len(acks) == 1

    def test_piggyback_cancels_pending(self, sim):
        policy, acks = self.make(sim)
        policy.on_data(in_order=True)
        policy.on_piggyback()
        sim.run()
        assert acks == []

    def test_cancel_stops_timer(self, sim):
        policy, acks = self.make(sim)
        policy.on_data(in_order=True)
        policy.cancel()
        sim.run()
        assert acks == []

    def test_counter_resets_after_flush(self, sim):
        policy, acks = self.make(sim, every=2)
        for _ in range(4):
            policy.on_data(in_order=True)
        assert len(acks) == 2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DelayedAck(timeout=0)
        with pytest.raises(ValueError):
            DelayedAck(every=1)


class TestRetransmitEstimator:
    pass  # RTO math covered in test_retransmit.py
