"""Content-addressed result store."""

import json

from repro.sweep import ResultStore

KEY = "a" * 64
ROW = {"requests": 10, "p95_ms": 1.25, "per_server": {"server0": 4}}


class TestRoundtrip:
    def test_put_get(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get(KEY) is None
        assert KEY not in store
        store.put(KEY, ROW, label="pt", config={"x": 1}, elapsed_s=0.5)
        assert store.get(KEY) == ROW
        assert KEY in store
        assert len(store) == 1
        assert list(store.keys()) == [KEY]

    def test_record_carries_provenance(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, ROW, label="pt", config={"x": 1}, elapsed_s=0.5)
        record = store.get_record(KEY)
        assert record["label"] == "pt"
        assert record["config"] == {"x": 1}
        assert record["elapsed_s"] == 0.5
        assert record["row"] == ROW

    def test_row_key_order_preserved(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, ROW)
        assert list(store.get(KEY)) == list(ROW)

    def test_reopen_sees_existing_points(self, tmp_path):
        ResultStore(tmp_path).put(KEY, ROW)
        assert ResultStore(tmp_path).get(KEY) == ROW


class TestDegradedPaths:
    def test_corrupt_point_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, ROW)
        (store.root / "points" / ("%s.json" % KEY)).write_text("{broken")
        assert store.get(KEY) is None

    def test_non_dict_row_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        (store.root / "points" / ("%s.json" % KEY)).write_text(
            json.dumps({"row": [1, 2]})
        )
        assert store.get(KEY) is None

    def test_clear_drops_points_keeps_log(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, ROW)
        store.put("b" * 64, ROW)
        assert store.clear() == 2
        assert len(store) == 0
        assert store.get(KEY) is None
        log = (store.root / "results.jsonl").read_text().splitlines()
        assert len(log) == 2  # append-only provenance survives

    def test_log_lines_are_json_records(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, ROW, label="pt")
        (line,) = (store.root / "results.jsonl").read_text().splitlines()
        assert json.loads(line)["key"] == KEY
