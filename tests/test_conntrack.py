"""Connection-tracking table."""

import pytest

from repro.lb.conntrack import ConnTrack
from repro.net.addr import FlowKey
from repro.units import MILLISECONDS, SECONDS


def flow(index=0):
    return FlowKey("client", 40_000 + index, "vip", 11211)


class TestAffinity:
    def test_lookup_miss_then_insert_then_hit(self):
        track = ConnTrack()
        assert track.lookup(flow(), now=0) is None
        track.insert(flow(), "server0", now=0)
        assert track.lookup(flow(), now=100) == "server0"

    def test_reinsert_moves_flow(self):
        track = ConnTrack()
        track.insert(flow(), "server0", now=0)
        track.insert(flow(), "server1", now=10)
        assert track.lookup(flow(), now=20) == "server1"
        assert track.active_flows("server0") == 0
        assert track.active_flows("server1") == 1

    def test_counts_per_backend(self):
        track = ConnTrack()
        for i in range(3):
            track.insert(flow(i), "server0", now=0)
        track.insert(flow(9), "server1", now=0)
        assert track.active_flows("server0") == 3
        assert track.active_flows("server1") == 1
        assert track.active_flows("unknown") == 0

    def test_len(self):
        track = ConnTrack()
        track.insert(flow(0), "s", now=0)
        track.insert(flow(1), "s", now=0)
        assert len(track) == 2


class TestIdleExpiry:
    def test_idle_flow_expires_on_lookup(self):
        track = ConnTrack(idle_timeout=1 * SECONDS)
        track.insert(flow(), "server0", now=0)
        assert track.lookup(flow(), now=2 * SECONDS) is None
        assert track.stats.expired_idle == 1
        assert track.active_flows("server0") == 0

    def test_activity_refreshes_idle_clock(self):
        track = ConnTrack(idle_timeout=1 * SECONDS)
        track.insert(flow(), "server0", now=0)
        for t in range(1, 5):
            assert track.lookup(flow(), now=t * 800 * MILLISECONDS) == "server0"

    def test_sweep_removes_idle_entries(self):
        track = ConnTrack(idle_timeout=1 * SECONDS, sweep_every=10)
        for i in range(5):
            track.insert(flow(i), "server0", now=0)
        # Touch a different flow enough times to trigger a sweep later.
        for op in range(25):
            track.lookup(flow(100), now=3 * SECONDS)
        assert len(track) == 0


class TestFinExpiry:
    def test_closing_flow_lingers_then_dies(self):
        track = ConnTrack(fin_linger=10 * MILLISECONDS, sweep_every=1)
        track.insert(flow(), "server0", now=0)
        track.mark_closing(flow(), now=0)
        # Within linger: still routable (retransmitted FIN, stray ACK).
        assert track.lookup(flow(), now=5 * MILLISECONDS) == "server0"
        # After linger, a sweep reaps it.
        track.lookup(flow(1), now=20 * MILLISECONDS)
        assert track.lookup(flow(), now=21 * MILLISECONDS) is None
        assert track.stats.expired_fin == 1

    def test_mark_closing_unknown_flow_is_noop(self):
        track = ConnTrack()
        track.mark_closing(flow(), now=0)  # must not raise


class TestValidation:
    def test_bad_timeouts_rejected(self):
        with pytest.raises(ValueError):
            ConnTrack(idle_timeout=0)
        with pytest.raises(ValueError):
            ConnTrack(fin_linger=-1)

    def test_stats_counters(self):
        track = ConnTrack()
        track.lookup(flow(), now=0)
        track.insert(flow(), "s", now=0)
        track.lookup(flow(), now=1)
        assert track.stats.misses == 1
        assert track.stats.inserts == 1
        assert track.stats.hits == 1
