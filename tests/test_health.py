"""Active health checking."""

import pytest

from repro.lb.backend import Backend, BackendPool
from repro.lb.health import HealthCheckConfig, HealthChecker
from repro.net.addr import Endpoint
from repro.net.network import Network
from repro.transport.endpoint import Host
from repro.units import MICROSECONDS, MILLISECONDS, SECONDS


def build(sim, n_servers=2):
    network = Network(sim)
    prober = Host(network, "prober")
    servers = []
    for index in range(n_servers):
        name = "s%d" % index
        host = Host(network, name)
        network.connect_bidirectional("prober", name, prop_delay=50 * MICROSECONDS)
        host.listen(7000, lambda conn: conn.__setattr__(
            "on_peer_close", lambda c: c.close()))
        servers.append(host)
    pool = BackendPool([Backend("s%d" % i) for i in range(n_servers)])
    targets = {"s%d" % i: Endpoint("s%d" % i, 7000) for i in range(n_servers)}
    return network, prober, servers, pool, targets


class TestProbing:
    def test_healthy_servers_stay_healthy(self, sim):
        network, prober, servers, pool, targets = build(sim)
        checker = HealthChecker(prober, pool, targets)
        sim.run_until(2 * SECONDS)
        assert all(b.healthy for b in [pool.get("s0"), pool.get("s1")])
        assert checker.stats("s0").successes > 10
        assert checker.stats("s0").failures == 0

    def test_dark_server_marked_down_after_fall(self, sim):
        network, prober, servers, pool, targets = build(sim)
        config = HealthCheckConfig(
            interval=50 * MILLISECONDS, timeout=20 * MILLISECONDS, fall=3
        )
        checker = HealthChecker(prober, pool, targets, config)
        sim.run_until(300 * MILLISECONDS)
        servers[0].stop_listening(7000)
        sim.run_until(1 * SECONDS)
        assert not pool.get("s0").healthy
        assert pool.get("s1").healthy
        assert checker.stats("s0").failures >= 3

    def test_recovered_server_marked_up_after_rise(self, sim):
        network, prober, servers, pool, targets = build(sim)
        config = HealthCheckConfig(
            interval=50 * MILLISECONDS, timeout=20 * MILLISECONDS, fall=2, rise=2
        )
        HealthChecker(prober, pool, targets, config)
        servers[0].stop_listening(7000)
        sim.run_until(500 * MILLISECONDS)
        assert not pool.get("s0").healthy
        # Service returns.
        servers[0].listen(7000, lambda conn: None)
        sim.run_until(1 * SECONDS)
        assert pool.get("s0").healthy

    def test_flap_requires_consecutive_results(self, sim):
        network, prober, servers, pool, targets = build(sim)
        config = HealthCheckConfig(
            interval=50 * MILLISECONDS, timeout=20 * MILLISECONDS, fall=5
        )
        checker = HealthChecker(prober, pool, targets, config)
        # One transient outage shorter than fall x interval: no transition.
        sim.run_until(200 * MILLISECONDS)
        servers[0].stop_listening(7000)
        sim.run_until(280 * MILLISECONDS)  # ~1-2 failed probes only
        servers[0].listen(7000, lambda conn: None)
        sim.run_until(1 * SECONDS)
        assert pool.get("s0").healthy
        assert checker.stats("s0").transitions == 0

    def test_unknown_target_rejected(self, sim):
        network, prober, servers, pool, targets = build(sim)
        targets["ghost"] = Endpoint("ghost", 1)
        with pytest.raises(ValueError):
            HealthChecker(prober, pool, targets)

    def test_stop_halts_probing(self, sim):
        network, prober, servers, pool, targets = build(sim)
        checker = HealthChecker(prober, pool, targets)
        sim.run_until(300 * MILLISECONDS)
        count = checker.stats("s0").probes
        checker.stop()
        sim.run_until(2 * SECONDS)
        assert checker.stats("s0").probes == count

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HealthCheckConfig(interval=0).validate()
        with pytest.raises(ValueError):
            HealthCheckConfig(fall=0).validate()


class TestMaglevIntegration:
    def test_unhealthy_backend_leaves_table_and_returns(self, sim):
        from repro.lb.policies import MaglevPolicy
        from repro.net.addr import FlowKey

        network, prober, servers, pool, targets = build(sim)
        policy = MaglevPolicy(pool, table_size=251)
        config = HealthCheckConfig(
            interval=50 * MILLISECONDS, timeout=20 * MILLISECONDS, fall=2, rise=2
        )
        HealthChecker(prober, pool, targets, config)
        servers[0].stop_listening(7000)
        sim.run_until(500 * MILLISECONDS)
        picks = {
            policy.select(FlowKey("c", 40_000 + i, "vip", 80), 0)
            for i in range(200)
        }
        assert picks == {"s1"}
        servers[0].listen(7000, lambda conn: None)
        sim.run_until(1500 * MILLISECONDS)
        picks = {
            policy.select(FlowKey("c", 40_000 + i, "vip", 80), 0)
            for i in range(200)
        }
        assert picks == {"s0", "s1"}
