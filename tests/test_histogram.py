"""Log-bucketed histogram."""

import random

import pytest

from repro.telemetry.histogram import LogHistogram
from repro.telemetry.quantiles import exact_quantile


class TestRecording:
    def test_empty(self):
        hist = LogHistogram()
        assert hist.total == 0
        assert hist.mean() is None
        assert hist.quantile(0.5) is None
        assert hist.min is None and hist.max is None

    def test_counts_and_sum(self):
        hist = LogHistogram()
        hist.record(10.0)
        hist.record(20.0, count=3)
        assert hist.total == 4
        assert hist.sum == pytest.approx(70.0)
        assert hist.mean() == pytest.approx(17.5)

    def test_min_max_exact(self):
        hist = LogHistogram()
        for value in (5.0, 1.0, 100.0):
            hist.record(value)
        assert hist.min == 1.0
        assert hist.max == 100.0

    def test_rejects_nonpositive_values(self):
        hist = LogHistogram()
        with pytest.raises(ValueError):
            hist.record(0.0)
        with pytest.raises(ValueError):
            hist.record(-1.0)

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            LogHistogram().record(1.0, count=0)

    def test_len_is_total(self):
        hist = LogHistogram()
        hist.record(1.0, count=7)
        assert len(hist) == 7


class TestQuantiles:
    def test_quantile_bounded_relative_error(self):
        rng = random.Random(3)
        hist = LogHistogram(base=2.0, sub=8)
        data = [rng.lognormvariate(10, 1.0) for _ in range(20000)]
        for value in data:
            hist.record(value)
        for q in (0.5, 0.9, 0.99):
            approx = hist.quantile(q)
            exact = exact_quantile(data, q)
            assert approx == pytest.approx(exact, rel=0.10)

    def test_quantile_range_validation(self):
        hist = LogHistogram()
        hist.record(1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_quantile_single_bucket(self):
        hist = LogHistogram()
        hist.record(100.0, count=10)
        q = hist.quantile(0.5)
        lo, hi, count = next(iter(hist.buckets()))
        assert lo <= 100.0 < hi
        assert q == pytest.approx((lo + hi) / 2)


class TestBuckets:
    def test_buckets_ordered_and_adjacent_values_bucketed(self):
        hist = LogHistogram(base=2.0, sub=1)
        hist.record(1.5)
        hist.record(3.0)
        hist.record(100.0)
        buckets = list(hist.buckets())
        lows = [b[0] for b in buckets]
        assert lows == sorted(lows)
        assert sum(b[2] for b in buckets) == 3

    def test_bucket_contains_its_values(self):
        hist = LogHistogram()
        hist.record(42.0)
        (lo, hi, count), = hist.buckets()
        assert lo <= 42.0 < hi
        assert count == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LogHistogram(base=1.0)
        with pytest.raises(ValueError):
            LogHistogram(sub=0)


class TestMerge:
    def test_merge_combines(self):
        a = LogHistogram()
        b = LogHistogram()
        a.record(1.0)
        b.record(1000.0, count=2)
        a.merge(b)
        assert a.total == 3
        assert a.min == 1.0
        assert a.max == 1000.0

    def test_merge_mismatched_rejected(self):
        a = LogHistogram(sub=8)
        b = LogHistogram(sub=4)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_empty_is_noop(self):
        a = LogHistogram()
        a.record(5.0)
        a.merge(LogHistogram())
        assert a.total == 1


class TestAscii:
    def test_empty_render(self):
        assert "empty" in LogHistogram().to_ascii()

    def test_render_has_rows(self):
        hist = LogHistogram()
        hist.record(1.0, count=10)
        hist.record(1000.0)
        out = hist.to_ascii()
        assert out.count("\n") >= 1
        assert "#" in out


class TestEdgeCases:
    def test_empty_histogram_has_no_buckets(self):
        hist = LogHistogram()
        assert list(hist.buckets()) == []
        assert hist.sum == 0.0

    def test_single_bucket_bounds_quantiles(self):
        hist = LogHistogram()
        hist.record(64.0, count=100)
        (lo, hi, _count), = hist.buckets()
        for q in (0.0, 0.5, 1.0):
            assert lo <= hist.quantile(q) <= hi

    def test_merge_into_empty(self):
        empty = LogHistogram()
        full = LogHistogram()
        full.record(7.0, count=3)
        empty.merge(full)
        assert empty.total == 3
        assert empty.min == 7.0 and empty.max == 7.0
        assert empty.sum == pytest.approx(21.0)

    def test_merge_preserves_source(self):
        a, b = LogHistogram(), LogHistogram()
        b.record(2.0)
        a.merge(b)
        a.record(4.0)
        assert b.total == 1
