"""Metrics registry: instruments, exports, and the exposition parser."""

import math

import pytest

from repro.obs.metrics import (
    MetricError,
    Registry,
    format_labels,
    parse_prometheus_text,
)


class TestInstruments:
    def test_counter_counts(self):
        registry = Registry()
        counter = registry.counter("repro_things_total", "things")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3

    def test_counter_rejects_negative(self):
        counter = Registry().counter("repro_things_total", "things")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Registry().gauge("repro_depth", "depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4

    def test_labeled_children_are_cached(self):
        counter = Registry().counter("repro_x_total", "x", labels=("backend",))
        a = counter.labels(backend="server0")
        b = counter.labels(backend="server0")
        assert a is b
        a.inc()
        assert counter.labels(backend="server1").value == 0

    def test_wrong_label_set_rejected(self):
        counter = Registry().counter("repro_x_total", "x", labels=("backend",))
        with pytest.raises(MetricError):
            counter.labels(server="s0")
        with pytest.raises(MetricError):
            counter.labels(backend="s0", extra="y")

    def test_labeled_family_rejects_bare_use(self):
        counter = Registry().counter("repro_x_total", "x", labels=("backend",))
        with pytest.raises(MetricError):
            counter.inc()

    def test_invalid_names_rejected(self):
        with pytest.raises(MetricError):
            Registry().counter("0bad", "x")
        with pytest.raises(MetricError):
            Registry().counter("repro_ok", "x", labels=("bad-label",))

    def test_histogram_observes(self):
        hist = Registry().histogram("repro_latency_ns", "latency")
        hist.observe(100.0)
        hist.observe(200.0)
        child = hist.labels() if hist.label_names else hist._only_child()
        assert child.histogram.total == 2


class TestRegistry:
    def test_register_is_idempotent(self):
        registry = Registry()
        a = registry.counter("repro_x_total", "x", labels=("backend",))
        b = registry.counter("repro_x_total", "x", labels=("backend",))
        assert a is b
        assert len(registry) == 1

    def test_type_conflict_rejected(self):
        registry = Registry()
        registry.counter("repro_x", "x")
        with pytest.raises(MetricError):
            registry.gauge("repro_x", "x")

    def test_label_conflict_rejected(self):
        registry = Registry()
        registry.counter("repro_x_total", "x", labels=("backend",))
        with pytest.raises(MetricError):
            registry.counter("repro_x_total", "x", labels=("server",))

    def test_families_sorted(self):
        registry = Registry()
        registry.counter("repro_b", "b")
        registry.counter("repro_a", "a")
        assert [f.name for f in registry.families()] == ["repro_a", "repro_b"]

    def test_collect_hook_runs_on_export(self):
        registry = Registry()
        gauge = registry.gauge("repro_pull", "pull-style value")
        registry.add_collect_hook(lambda: gauge.set(42))
        assert registry.to_json()["repro_pull"]["samples"][0]["value"] == 42

    def test_get(self):
        registry = Registry()
        counter = registry.counter("repro_x", "x")
        assert registry.get("repro_x") is counter
        assert registry.get("absent") is None


class TestPrometheusExport:
    def make_registry(self):
        registry = Registry()
        counter = registry.counter(
            "repro_samples_total", "samples", labels=("backend", "delta_us")
        )
        counter.labels(backend="server0", delta_us="64").inc(5)
        registry.gauge("repro_mode", "mode").set(1)
        hist = registry.histogram("repro_latency_ns", "latency")
        hist.observe(100.0)
        hist.observe(5000.0)
        return registry

    def test_round_trips_through_parser(self):
        text = self.make_registry().to_prometheus()
        families = parse_prometheus_text(text)
        assert families["repro_samples_total"]["type"] == "counter"
        name, labels, value = families["repro_samples_total"]["samples"][0]
        assert labels == {"backend": "server0", "delta_us": "64"}
        assert value == 5

    def test_histogram_emits_cumulative_buckets(self):
        text = self.make_registry().to_prometheus()
        families = parse_prometheus_text(text)
        samples = families["repro_latency_ns"]["samples"]
        buckets = [
            (labels["le"], value)
            for name, labels, value in samples
            if name == "repro_latency_ns_bucket"
        ]
        # Cumulative: counts never decrease and the +Inf bucket is total.
        counts = [v for _le, v in buckets]
        assert counts == sorted(counts)
        assert buckets[-1][0] == "+Inf" and buckets[-1][1] == 2
        count = [v for n, _l, v in samples if n == "repro_latency_ns_count"]
        assert count == [2]

    def test_help_and_type_lines_present(self):
        text = self.make_registry().to_prometheus()
        assert "# HELP repro_mode mode" in text
        assert "# TYPE repro_mode gauge" in text

    def test_label_values_escaped(self):
        registry = Registry()
        registry.counter("repro_x", "x", labels=("k",)).labels(k='a"b\\c').inc()
        families = parse_prometheus_text(registry.to_prometheus())
        _name, labels, _value = families["repro_x"]["samples"][0]
        assert labels == {"k": 'a\\"b\\\\c'}  # parser keeps raw escapes

    def test_json_export_shape(self):
        out = self.make_registry().to_json()
        hist = out["repro_latency_ns"]["samples"][0]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(5100.0)
        assert sum(b["count"] for b in hist["buckets"]) == 2


class TestParser:
    def test_rejects_malformed_sample(self):
        with pytest.raises(MetricError):
            parse_prometheus_text("# TYPE x counter\nx{oops 1\n")

    def test_rejects_sample_without_type(self):
        with pytest.raises(MetricError):
            parse_prometheus_text("orphan_metric 1\n")

    def test_rejects_duplicate_labels(self):
        text = '# TYPE x counter\nx{a="1",a="2"} 1\n'
        with pytest.raises(MetricError):
            parse_prometheus_text(text)

    def test_rejects_histogram_without_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="10"} 1\n'
            "h_sum 5\n"
            "h_count 1\n"
        )
        with pytest.raises(MetricError):
            parse_prometheus_text(text)

    def test_parses_special_values(self):
        text = "# TYPE x gauge\nx 1\n# TYPE y gauge\ny +Inf\n"
        families = parse_prometheus_text(text)
        assert families["y"]["samples"][0][2] == math.inf

    def test_free_comments_ignored(self):
        text = "# just a note\n# TYPE x counter\nx 3\n"
        assert parse_prometheus_text(text)["x"]["samples"][0][2] == 3


class TestFormatLabels:
    def test_empty(self):
        assert format_labels({}) == ""

    def test_sorted_keys(self):
        assert format_labels({"b": "2", "a": "1"}) == '{a="1",b="2"}'
