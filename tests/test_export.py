"""CSV export helpers."""

import csv

from repro.app.client import RequestRecord
from repro.app.protocol import Op
from repro.core.controller import ShiftEvent
from repro.harness.export import (
    export_latency_series,
    export_records,
    export_shift_events,
    export_timeseries,
    write_csv,
)
from repro.telemetry.timeseries import TimeSeries


class TestWriteCsv:
    def test_headers_and_rows(self, tmp_path):
        path = tmp_path / "out.csv"
        count = write_csv(path, ("a", "b"), [(1, 2), (3, 4)])
        assert count == 2
        rows = list(csv.reader(path.open()))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "out.csv"
        write_csv(path, ("x",), [(1,)])
        assert path.exists()


class TestExporters:
    def test_timeseries(self, tmp_path):
        series = TimeSeries(name="t_lb")
        series.append(10, 1.5)
        series.append(20, 2.5)
        path = tmp_path / "series.csv"
        assert export_timeseries(path, series) == 2
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["time_ns", "t_lb"]
        assert rows[1] == ["10", "1.5"]

    def test_latency_series(self, tmp_path):
        path = tmp_path / "p95.csv"
        assert export_latency_series(path, [(0, 100.0), (1000, 200.0)]) == 2
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["bucket_start_ns", "p95_ns"]

    def test_records(self, tmp_path):
        record = RequestRecord(
            request_id=7,
            op=Op.GET,
            sent_at=100,
            completed_at=300,
            latency=200,
            server="server1",
            local_port=50_000,
        )
        path = tmp_path / "records.csv"
        assert export_records(path, [record]) == 1
        rows = list(csv.reader(path.open()))
        assert rows[1] == ["7", "get", "100", "300", "200", "server1", "50000"]

    def test_shift_events_include_reason(self, tmp_path):
        events = [
            ShiftEvent(
                time=500,
                from_backend="server0",
                worst_estimate=900.0,
                best_estimate=100.0,
                weights_after={"server1": 1.2, "server0": 0.8},
            ),
            ShiftEvent(
                time=900,
                from_backend="*",
                worst_estimate=0.0,
                best_estimate=0.0,
                weights_after={"server0": 1.0, "server1": 1.0},
                reason="mode-change",
            ),
        ]
        path = tmp_path / "shifts.csv"
        assert export_shift_events(path, events) == 2
        rows = list(csv.reader(path.open()))
        assert rows[0] == [
            "time_ns",
            "from_backend",
            "worst_estimate_ns",
            "best_estimate_ns",
            "reason",
            "weights_after",
        ]
        assert rows[1][4] == "hysteresis-pass"  # the default
        assert rows[2][4] == "mode-change"
        assert rows[2][5] == "server0=1;server1=1"  # sorted by name

    def test_records_without_server(self, tmp_path):
        record = RequestRecord(
            request_id=1,
            op=Op.SET,
            sent_at=0,
            completed_at=1,
            latency=1,
            server=None,
            local_port=1,
        )
        path = tmp_path / "records.csv"
        export_records(path, [record])
        rows = list(csv.reader(path.open()))
        assert rows[1][5] == ""


class TestObsExporters:
    def make_registry(self):
        from repro.obs import Registry

        registry = Registry()
        counter = registry.counter(
            "repro_samples_total", "samples", labels=("backend",)
        )
        counter.labels(backend="server0").inc(4)
        registry.gauge("repro_mode", "mode").set(1)
        hist = registry.histogram("repro_latency_ns", "latency")
        hist.observe(100.0)
        return registry

    def test_metrics_round_trip(self, tmp_path):
        from repro.harness.export import export_metrics

        path = tmp_path / "metrics.csv"
        count = export_metrics(path, self.make_registry())
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["metric", "type", "labels", "value"]
        assert count == len(rows) - 1
        by_metric = {row[0]: row for row in rows[1:]}
        assert by_metric["repro_samples_total"] == [
            "repro_samples_total", "counter", "backend=server0", "4.0",
        ]
        assert by_metric["repro_mode"][3] == "1.0"
        assert by_metric["repro_latency_ns_count"][3] == "1"
        assert float(by_metric["repro_latency_ns_sum"][3]) == 100.0

    def test_trace_events_round_trip(self, tmp_path):
        from repro.harness.export import export_trace_events
        from repro.net.addr import FlowKey
        from repro.obs import CausalTracer

        flow = FlowKey("client0", 40000, "vip", 11211)
        tracer = CausalTracer()
        tracer.on_send(100, 1, "client0", 40000, False)
        tracer.on_route(110, flow, "server0")
        tracer.on_sample(200, flow, "server0", 90, 64_000)
        tracer.on_response(500, 1, "server0", 10, 50, 400)

        path = tmp_path / "trace.csv"
        assert export_trace_events(path, tracer) == 4
        rows = list(csv.reader(path.open()))
        kinds = [row[0] for row in rows[1:]]
        assert kinds == ["send", "route", "sample", "response"]  # time order
        times = [int(row[1]) for row in rows[1:]]
        assert times == sorted(times)
        sample_row = rows[3]
        assert sample_row[7] == "server0"
        assert sample_row[9] == "90" and sample_row[10] == "64000"
