"""Latency-variability injectors (§2.2)."""

import random

import pytest

from repro.app.variability import (
    CompositeInjector,
    GcPauseInjector,
    NullInjector,
    PreemptionInjector,
    StepInjector,
)
from repro.units import MICROSECONDS, MILLISECONDS, SECONDS


class TestNull:
    def test_always_zero(self):
        injector = NullInjector()
        assert injector.extra_delay(0) == 0
        assert injector.extra_delay(10**12) == 0


class TestStep:
    def test_zero_before_start(self):
        injector = StepInjector(extra=1000, start=500)
        assert injector.extra_delay(499) == 0

    def test_extra_inside_window(self):
        injector = StepInjector(extra=1000, start=500, end=600)
        assert injector.extra_delay(500) == 1000
        assert injector.extra_delay(599) == 1000

    def test_zero_after_end(self):
        injector = StepInjector(extra=1000, start=500, end=600)
        assert injector.extra_delay(600) == 0

    def test_open_ended(self):
        injector = StepInjector(extra=1000, start=0)
        assert injector.extra_delay(10**15) == 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            StepInjector(extra=-1, start=0)
        with pytest.raises(ValueError):
            StepInjector(extra=1, start=100, end=50)


class TestGcPause:
    def test_pause_at_period_start(self):
        injector = GcPauseInjector(period=1000, duration=100)
        # At the very start of a pause, wait the full duration.
        assert injector.extra_delay(0) == 100
        # Halfway through the pause, wait the remainder.
        assert injector.extra_delay(50) == 50

    def test_no_delay_between_pauses(self):
        injector = GcPauseInjector(period=1000, duration=100)
        assert injector.extra_delay(100) == 0
        assert injector.extra_delay(999) == 0

    def test_periodicity(self):
        injector = GcPauseInjector(period=1000, duration=100)
        assert injector.extra_delay(5000) == 100
        assert injector.extra_delay(5050) == 50

    def test_phase_shifts_pauses(self):
        injector = GcPauseInjector(period=1000, duration=100, phase=500)
        assert injector.extra_delay(0) == 0
        assert injector.extra_delay(500) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            GcPauseInjector(period=0, duration=0)
        with pytest.raises(ValueError):
            GcPauseInjector(period=100, duration=100)  # duration < period
        with pytest.raises(ValueError):
            GcPauseInjector(period=100, duration=10, phase=-1)


class TestPreemption:
    def test_delay_only_during_bursts(self):
        injector = PreemptionInjector(
            random.Random(1),
            rate_hz=100.0,
            min_duration=1 * MILLISECONDS,
            max_duration=1 * MILLISECONDS,
        )
        # Scan forward: any non-zero delay must be <= max duration.
        delays = [injector.extra_delay(t * 100 * MICROSECONDS) for t in range(1000)]
        positive = [d for d in delays if d > 0]
        assert positive, "expected at least one burst in 0.1 s at 100 Hz"
        assert all(d <= 1 * MILLISECONDS for d in positive)

    def test_burst_frequency_roughly_matches_rate(self):
        injector = PreemptionInjector(
            random.Random(2),
            rate_hz=50.0,
            min_duration=100 * MICROSECONDS,
            max_duration=100 * MICROSECONDS,
        )
        # Count transitions into bursts over 2 simulated seconds.
        bursts = 0
        in_burst = False
        for t in range(0, 2 * SECONDS, 50 * MICROSECONDS):
            delayed = injector.extra_delay(t) > 0
            if delayed and not in_burst:
                bursts += 1
            in_burst = delayed
        assert bursts == pytest.approx(100, rel=0.4)

    def test_requires_monotone_queries(self):
        injector = PreemptionInjector(
            random.Random(3), rate_hz=10.0, min_duration=10, max_duration=20
        )
        injector.extra_delay(SECONDS)
        # Going backwards is undefined but must not produce negatives.
        assert injector.extra_delay(SECONDS) >= 0

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            PreemptionInjector(rng, rate_hz=0, min_duration=1, max_duration=2)
        with pytest.raises(ValueError):
            PreemptionInjector(rng, rate_hz=1, min_duration=5, max_duration=2)


class TestComposite:
    def test_sums_components(self):
        injector = CompositeInjector(
            [StepInjector(extra=10, start=0), StepInjector(extra=5, start=0)]
        )
        assert injector.extra_delay(100) == 15

    def test_empty_composite_is_zero(self):
        assert CompositeInjector([]).extra_delay(0) == 0
