"""Many independent feedback LBs over one server pool (open question #4)."""

import pytest

from repro.errors import ConfigError
from repro.harness.multilb import MultiLbConfig, run_multilb
from repro.units import MILLISECONDS, SECONDS


_cache = {}


def run(duration=800 * MILLISECONDS, n_lbs=2):
    key = (duration, n_lbs)
    if key not in _cache:
        _cache[key] = run_multilb(MultiLbConfig(duration=duration, n_lbs=n_lbs))
    return _cache[key]


class TestTopology:
    def test_clients_only_reach_their_own_lb(self):
        result = run()
        # Each LB saw traffic, and per-LB new flows exist.
        for lb in result.lbs:
            assert lb.stats.packets_forwarded > 0

    def test_servers_shared_by_all_lbs(self):
        result = run()
        for server in result.servers:
            assert server.stats.requests > 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            MultiLbConfig(n_lbs=0).validate()
        with pytest.raises(ConfigError):
            MultiLbConfig(duration=0).validate()


class TestIndependentControl:
    def test_every_lb_ends_with_slow_server_drained(self):
        # An LB may have pre-positioned its weights through noise shifts
        # (the naive controller is noisy) — the end state is the robust
        # signal: each independent loop leaves the injected server at a
        # small share of its weight.
        result = run()
        injected = result.config.injected_server
        for lb in result.lbs:
            weights = lb.pool.weights()
            assert weights[injected] < sum(weights.values()) / 4

    def test_combined_traffic_drains_from_slow_server(self):
        result = run()
        config = result.config
        share = result.injected_share_after(
            config.injection_at + config.duration // 4
        )
        assert share < 0.25

    def test_weight_trajectories_recorded(self):
        result = run()
        for series in result.weight_series:
            assert len(series) > 0
            for _t, value in series.items():
                assert 0.0 <= value <= 1.0

    def test_oscillation_metric_bounded(self):
        # The herd exists but must not ring indefinitely in this setup.
        result = run()
        for index in range(result.config.n_lbs):
            assert result.oscillations(index) < 30

    def test_per_lb_state_isolated(self):
        result = run()
        pools = [lb.pool for lb in result.lbs]
        assert pools[0] is not pools[1]
        # Estimators are independent too.
        assert result.feedbacks[0].estimator is not result.feedbacks[1].estimator
