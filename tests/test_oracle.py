"""Oracle feedback baseline."""

from repro.app.client import RequestRecord
from repro.app.protocol import Op
from repro.core.controller import ControllerConfig
from repro.core.estimator import EstimatorConfig
from repro.lb.backend import Backend, BackendPool
from repro.lb.oracle import OracleFeedback
from repro.units import MILLISECONDS


def record(server, latency, t):
    return RequestRecord(
        request_id=1,
        op=Op.GET,
        sent_at=t - latency,
        completed_at=t,
        latency=latency,
        server=server,
        local_port=40_000,
    )


class TestOracleFeedback:
    def test_estimates_from_records(self):
        pool = BackendPool([Backend("s0"), Backend("s1")])
        oracle = OracleFeedback(pool, control=False)
        oracle.on_record(record("s0", 100_000, 1_000_000))
        oracle.on_record(record("s1", 900_000, 1_000_000))
        assert oracle.estimator.estimate("s0") == 100_000
        assert oracle.estimator.estimate("s1") == 900_000

    def test_records_without_server_ignored(self):
        pool = BackendPool([Backend("s0")])
        oracle = OracleFeedback(pool, control=False)
        rec = record(None, 100, 1000)
        oracle.on_record(rec)
        assert oracle.estimator.total_samples == 0

    def test_control_shifts_weights(self):
        pool = BackendPool([Backend("s0"), Backend("s1")])
        oracle = OracleFeedback(
            pool,
            estimator_config=EstimatorConfig(min_samples=1),
            controller_config=ControllerConfig(hysteresis_ratio=1.1),
        )
        t = 0
        for _ in range(10):
            t += 1 * MILLISECONDS
            oracle.on_record(record("s0", 2 * MILLISECONDS, t))
            oracle.on_record(record("s1", 100_000, t))
        weights = pool.weights()
        assert weights["s0"] < 1.0
        assert weights["s1"] > 1.0
        assert oracle.controller is not None
        assert oracle.controller.shift_count > 0

    def test_no_controller_in_measure_mode(self):
        pool = BackendPool([Backend("s0")])
        assert OracleFeedback(pool, control=False).controller is None
