"""Runner result views."""

import pytest

from repro.app.protocol import Op
from repro.harness.config import PolicyName, ScenarioConfig
from repro.harness.runner import run_scenario
from repro.units import MILLISECONDS, SECONDS


@pytest.fixture(scope="module")
def result():
    return run_scenario(
        ScenarioConfig(
            seed=3,
            duration=300 * MILLISECONDS,
            policy=PolicyName.FEEDBACK,
            warmup=50 * MILLISECONDS,
        )
    )


class TestResultViews:
    def test_records_sorted_by_completion(self, result):
        times = [r.completed_at for r in result.records]
        assert times == sorted(times)

    def test_latencies_filtering(self, result):
        all_lat = result.latencies()
        gets = result.latencies(Op.GET)
        sets = result.latencies(Op.SET)
        assert len(gets) + len(sets) == len(all_lat)
        windowed = result.latencies(start=100 * MILLISECONDS, end=200 * MILLISECONDS)
        assert len(windowed) < len(all_lat)

    def test_latencies_open_ended_matches_bounded(self, result):
        # The unfiltered and no-upper-bound fast paths must agree with
        # the equivalent explicit windows.
        horizon = result.config.duration + 1 * SECONDS
        assert result.latencies() == result.latencies(start=0, end=horizon)
        start = 100 * MILLISECONDS
        assert result.latencies(start=start) == result.latencies(
            start=start, end=horizon
        )
        assert result.latencies(Op.GET, start) == result.latencies(
            Op.GET, start, horizon
        )

    def test_summary_windows(self, result):
        assert result.summary() is not None
        assert result.summary(start=10**15) is None

    def test_latency_series_buckets(self, result):
        series = result.latency_series(bucket=100 * MILLISECONDS)
        assert len(series) >= 2
        for t, value in series:
            assert t % (100 * MILLISECONDS) == 0
            assert value > 0

    def test_per_server_counts_cover_records(self, result):
        counts = result.per_server_counts()
        assert sum(counts.values()) == len(result.records)
        assert set(counts) <= {"server0", "server1"}

    def test_throughput_positive(self, result):
        assert result.throughput_rps() > 100

    def test_report_renders(self, result):
        text = result.report()
        assert "completed requests" in text
        assert "latency" in text

    def test_shift_times_sorted(self, result):
        times = result.shift_times()
        assert times == sorted(times)

    def test_first_shift_after(self, result):
        times = result.shift_times()
        if times:
            assert result.first_shift_after(0) == times[0]
        assert result.first_shift_after(10**15) is None


class TestDeterministicReport:
    def test_default_report_carries_wallclock(self, result):
        assert "events/sec wall-clock" in result.report()

    def test_deterministic_report_scrubs_wallclock(self, result):
        text = result.report(deterministic=True)
        assert "wall-clock" not in text
        # Only the host-dependent fragment goes; the engine line stays.
        assert "engine: %d events processed" % result.wall_events in text

    def test_deterministic_report_is_stable_across_runs(self):
        config = dict(
            seed=3,
            duration=300 * MILLISECONDS,
            policy=PolicyName.FEEDBACK,
            warmup=50 * MILLISECONDS,
        )
        a = run_scenario(ScenarioConfig(**config))
        b = run_scenario(ScenarioConfig(**config))
        assert a.report(deterministic=True) == b.report(deterministic=True)

    def test_scrub_wallclock_matches_deterministic_render(self, result):
        from repro.harness.report import scrub_wallclock

        assert scrub_wallclock(result.report()) == result.report(
            deterministic=True
        )

    def test_scrub_wallclock_on_plain_text(self):
        from repro.harness.report import scrub_wallclock

        line = "engine: 9 events processed, 123 events/sec wall-clock, x"
        assert scrub_wallclock(line) == "engine: 9 events processed, x"
        assert scrub_wallclock("untouched") == "untouched"
