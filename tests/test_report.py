"""Report formatting."""

from repro.harness.report import format_series, format_table


class TestFormatTable:
    def test_columns_aligned(self):
        out = format_table(("name", "value"), [("a", 1), ("longer-name", 22)])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        header, rule = lines[0], lines[1]
        assert header.index("value") == lines[2].index("1")

    def test_floats_formatted(self):
        out = format_table(("x",), [(1.23456,)])
        assert "1.235" in out

    def test_empty_rows(self):
        out = format_table(("a", "b"), [])
        assert "a" in out and "b" in out


class TestFormatSeries:
    def test_empty(self):
        assert "empty" in format_series([], "t", "v")

    def test_bars_scale_to_peak(self):
        out = format_series([(0.0, 1.0), (1.0, 2.0)], "t", "v", width=10)
        lines = out.splitlines()
        assert lines[-1].count("#") == 10
        assert lines[-2].count("#") == 5

    def test_zero_values_no_bar(self):
        out = format_series([(0.0, 0.0)], "t", "v")
        assert "#" not in out.splitlines()[-1]
