"""Retry plane arithmetic: token budget, backoff, config validation.

The load-bearing property is the budget bound: however the failures
are interleaved, total retries can never exceed
``budget_initial + budget_ratio × first_attempts``.
"""

import random

import pytest

from repro.resilience.retry import (
    RetryBudget,
    RetryConfig,
    RetryStats,
    backoff_delay,
)
from repro.units import MILLISECONDS

MS = MILLISECONDS


class TestBudget:
    def test_cold_start_allowance(self):
        budget = RetryBudget(RetryConfig(budget_initial=2.0))
        assert budget.withdraw()
        assert budget.withdraw()
        assert not budget.withdraw()

    def test_deposits_accrue_fractionally(self):
        # 0.25 is exact in binary, so the threshold is crisp.
        budget = RetryBudget(RetryConfig(budget_initial=0.0, budget_ratio=0.25))
        for _ in range(3):
            budget.deposit()
        assert not budget.withdraw()  # 0.75 tokens: not enough
        budget.deposit()
        assert budget.withdraw()  # 1.0 tokens

    def test_bucket_caps(self):
        config = RetryConfig(budget_initial=1.0, budget_ratio=1.0, budget_cap=3.0)
        budget = RetryBudget(config)
        for _ in range(100):
            budget.deposit()
        assert budget.tokens == 3.0

    def test_arithmetic_bound_holds_under_any_interleaving(self):
        """Adversarial schedule: retries never exceed the bound."""
        config = RetryConfig(budget_initial=5.0, budget_ratio=0.1, budget_cap=50.0)
        budget = RetryBudget(config)
        rng = random.Random(7)
        firsts = retries = 0
        for _ in range(5000):
            if rng.random() < 0.5:
                budget.deposit()
                firsts += 1
            elif budget.withdraw():
                retries += 1
        assert retries <= budget.bound(firsts)

    def test_bound_formula(self):
        config = RetryConfig(budget_initial=10.0, budget_ratio=0.1)
        assert RetryBudget(config).bound(1000) == pytest.approx(110.0)


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        config = RetryConfig(
            base_backoff=1 * MS, backoff_multiplier=2.0, max_backoff=32 * MS, jitter=0.0
        )
        rng = random.Random(0)
        delays = [backoff_delay(config, k, rng) for k in (1, 2, 3, 4)]
        assert delays == [1 * MS, 2 * MS, 4 * MS, 8 * MS]

    def test_capped_at_max_backoff(self):
        config = RetryConfig(
            base_backoff=1 * MS, backoff_multiplier=2.0, max_backoff=4 * MS, jitter=0.0
        )
        assert backoff_delay(config, 10, random.Random(0)) == 4 * MS

    def test_jitter_stays_in_range_and_varies(self):
        config = RetryConfig(base_backoff=10 * MS, jitter=0.5)
        rng = random.Random(3)
        delays = [backoff_delay(config, 1, rng) for _ in range(50)]
        assert all(10 * MS <= d <= 15 * MS for d in delays)
        assert len(set(delays)) > 10  # actually jittered

    def test_retry_index_is_one_based(self):
        with pytest.raises(ValueError):
            backoff_delay(RetryConfig(), 0, random.Random(0))


class TestStats:
    def test_abandoned_sums_terminal_failures(self):
        stats = RetryStats(
            budget_denied=3, attempts_exhausted=2, deadline_expiries=9
        )
        assert stats.abandoned == 5


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(deadline=0),
            dict(max_attempts=0),
            dict(base_backoff=-1),
            dict(base_backoff=10, max_backoff=5),
            dict(backoff_multiplier=0.5),
            dict(jitter=-0.1),
            dict(budget_ratio=-0.1),
            dict(budget_initial=-1.0),
            dict(budget_initial=10.0, budget_cap=5.0),
        ],
    )
    def test_rejects_malformed(self, kwargs):
        with pytest.raises(ValueError):
            RetryConfig(**kwargs).validate()

    def test_defaults_validate(self):
        RetryConfig().validate()
