"""The alpha-strategy Fig 3 report is pinned byte-for-byte.

The registry refactor moved controller construction behind name-keyed
dispatch; this golden guarantees the default path — the paper's α-shift
rule on the Fig 3 stimulus — still produces the identical report.  Only
the wall-clock events/sec figure (real-time, not simulated) is masked.

Regenerate (only after an intentional behavior change)::

    PYTHONPATH=src python -m repro --duration 1.0 run --fault fig3 \
        | sed -E 's/, [0-9]+ events\\/sec wall-clock//' \
        > tests/golden/fig3_alpha_report.txt
"""

import os
import re

import pytest

from repro import units
from repro.faults import parse_faults
from repro.harness.config import PolicyName, ScenarioConfig
from repro.harness.runner import run_scenario

GOLDEN = os.path.join(
    os.path.dirname(__file__), "golden", "fig3_alpha_report.txt"
)

_WALL_CLOCK = re.compile(r", \d+ events/sec wall-clock")


@pytest.mark.slow
def test_fig3_alpha_report_matches_golden():
    duration = units.seconds(1.0)
    config = ScenarioConfig(
        seed=1,
        duration=duration,
        n_clients=1,
        n_servers=2,
        policy=PolicyName.FEEDBACK,
        faults=parse_faults("fig3", duration),
        warmup=duration // 10,
    )
    assert config.feedback.strategy == "alpha"  # the default law
    report = _WALL_CLOCK.sub("", run_scenario(config).report())
    with open(GOLDEN) as handle:
        expected = handle.read().rstrip("\n")
    assert report == expected
