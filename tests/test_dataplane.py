"""LB dataplane: VIP processing, affinity, DSR forwarding, taps."""

import pytest

from repro.lb.backend import Backend, BackendPool
from repro.lb.dataplane import LoadBalancer
from repro.lb.policies import MaglevPolicy, RoundRobin
from repro.net.addr import Endpoint
from repro.net.network import Network
from repro.net.packet import Packet, TcpFlags
from repro.sim.engine import Simulator


class RecorderNode:
    def __init__(self, name):
        self.name = name
        self.received = []

    def on_packet(self, packet):
        self.received.append(packet)


def build_lb(sim, n_servers=2, policy_cls=RoundRobin):
    network = Network(sim)
    client = RecorderNode("client")
    network.add_node(client)
    servers = [RecorderNode("s%d" % i) for i in range(n_servers)]
    pool = BackendPool([Backend(s.name) for s in servers])
    if policy_cls is RoundRobin:
        policy = RoundRobin(pool)
    else:
        policy = MaglevPolicy(pool, table_size=251)
    lb = LoadBalancer(network, "lb", Endpoint("vip", 80), pool, policy)
    network.connect("client", "lb", prop_delay=10)
    network.set_default_route("client", "lb")
    for server in servers:
        network.add_node(server)
        network.connect("lb", server.name, prop_delay=10)
    return network, client, servers, pool, lb


def vip_packet(port=40_000, flags=TcpFlags.SYN, payload=0):
    return Packet(
        src=Endpoint("client", port),
        dst=Endpoint("vip", 80),
        flags=flags,
        payload_len=payload,
    )


class TestForwarding:
    def test_syn_routed_by_policy(self, sim):
        network, client, servers, pool, lb = build_lb(sim)
        network.send_from("client", vip_packet(port=1))
        network.send_from("client", vip_packet(port=2))
        sim.run()
        assert len(servers[0].received) == 1
        assert len(servers[1].received) == 1
        assert lb.stats.new_flows == 2

    def test_destination_left_intact_for_dsr(self, sim):
        network, client, servers, pool, lb = build_lb(sim)
        network.send_from("client", vip_packet())
        sim.run()
        delivered = servers[0].received[0]
        assert delivered.dst == Endpoint("vip", 80)

    def test_affinity_overrides_policy(self, sim):
        network, client, servers, pool, lb = build_lb(sim)
        # Same flow: first SYN picks s0 (round robin), then data packets
        # must stick to s0 even though RR would rotate.
        network.send_from("client", vip_packet(port=7, flags=TcpFlags.SYN))
        sim.run()
        for _ in range(3):
            network.send_from(
                "client", vip_packet(port=7, flags=TcpFlags.ACK, payload=100)
            )
        sim.run()
        assert len(servers[0].received) == 4
        assert len(servers[1].received) == 0

    def test_non_syn_miss_falls_back_to_policy(self, sim):
        network, client, servers, pool, lb = build_lb(sim, policy_cls=MaglevPolicy)
        # No SYN ever seen (conntrack lost): mid-stream packet still routed.
        network.send_from(
            "client", vip_packet(port=9, flags=TcpFlags.ACK, payload=10)
        )
        sim.run()
        assert lb.stats.conntrack_fallbacks == 1
        assert sum(len(s.received) for s in servers) == 1

    def test_wrong_vip_dropped(self, sim):
        network, client, servers, pool, lb = build_lb(sim)
        stray = Packet(src=Endpoint("client", 1), dst=Endpoint("other-vip", 80))
        network.send_from("client", stray) if False else lb.on_packet(stray)
        assert lb.stats.packets_dropped_no_backend == 1
        assert all(not s.received for s in servers)

    def test_fin_marks_conntrack_closing(self, sim):
        network, client, servers, pool, lb = build_lb(sim)
        network.send_from("client", vip_packet(port=3))
        sim.run()
        network.send_from(
            "client", vip_packet(port=3, flags=TcpFlags.FIN | TcpFlags.ACK)
        )
        sim.run()
        entry = lb.conntrack._entries[vip_packet(port=3).flow]
        assert entry.closing_at is not None


class TestTaps:
    def test_tap_sees_flow_backend_packet(self, sim):
        network, client, servers, pool, lb = build_lb(sim)
        seen = []
        lb.add_tap(lambda now, flow, backend, pkt: seen.append((now, flow, backend)))
        network.send_from("client", vip_packet(port=5))
        sim.run()
        assert len(seen) == 1
        now, flow, backend = seen[0]
        assert flow.src_port == 5
        assert backend == "s0"

    def test_tap_called_per_packet_including_data(self, sim):
        network, client, servers, pool, lb = build_lb(sim)
        seen = []
        lb.add_tap(lambda now, flow, backend, pkt: seen.append(pkt))
        network.send_from("client", vip_packet(port=5))
        sim.run()
        network.send_from("client", vip_packet(port=5, flags=TcpFlags.ACK, payload=9))
        sim.run()
        assert len(seen) == 2


class TestStats:
    def test_per_backend_counters_and_share(self, sim):
        network, client, servers, pool, lb = build_lb(sim)
        for port in range(10):
            network.send_from("client", vip_packet(port=port))
        sim.run()
        assert lb.stats.packets_forwarded == 10
        share = lb.backend_share()
        assert share["s0"] == pytest.approx(0.5)
        assert share["s1"] == pytest.approx(0.5)

    def test_share_empty_before_traffic(self, sim):
        _net, _client, _servers, _pool, lb = build_lb(sim)
        assert lb.backend_share() == {}
