"""RTO estimation (RFC 6298 subset)."""

import pytest

from repro.transport.retransmit import RttEstimator
from repro.units import MILLISECONDS, SECONDS


class TestRttEstimator:
    def test_initial_rto(self):
        est = RttEstimator(initial_rto=100 * MILLISECONDS)
        assert est.rto == 100 * MILLISECONDS
        assert est.srtt is None

    def test_first_sample_sets_srtt(self):
        est = RttEstimator()
        est.sample(10 * MILLISECONDS)
        assert est.srtt == pytest.approx(10 * MILLISECONDS)

    def test_rto_converges_for_steady_rtt(self):
        est = RttEstimator()
        for _ in range(50):
            est.sample(10 * MILLISECONDS)
        # RTTVAR -> 0, so RTO -> max(rto_min, srtt).
        assert est.rto == pytest.approx(10 * MILLISECONDS, rel=0.2)

    def test_rto_floor(self):
        est = RttEstimator(rto_min=5 * MILLISECONDS)
        for _ in range(50):
            est.sample(100_000)  # 0.1 ms RTT
        assert est.rto == 5 * MILLISECONDS

    def test_rto_ceiling(self):
        est = RttEstimator(rto_max=1 * SECONDS)
        est.sample(10 * SECONDS)
        assert est.rto == 1 * SECONDS

    def test_variance_raises_rto(self):
        stable = RttEstimator()
        jittery = RttEstimator()
        for i in range(50):
            stable.sample(10 * MILLISECONDS)
            jittery.sample((5 + 10 * (i % 2)) * MILLISECONDS)
        assert jittery.rto > stable.rto

    def test_backoff_doubles_and_caps(self):
        est = RttEstimator(initial_rto=100 * MILLISECONDS, rto_max=100 * SECONDS)
        base = est.rto
        est.on_timeout()
        assert est.rto == 2 * base
        est.on_timeout()
        assert est.rto == 4 * base
        for _ in range(20):
            est.on_timeout()
        assert est.rto == min(64 * base, 100 * SECONDS)

    def test_sample_resets_backoff(self):
        est = RttEstimator(initial_rto=100 * MILLISECONDS)
        est.on_timeout()
        est.sample(50 * MILLISECONDS)
        # Back-off cleared: rto reflects srtt math, not doubling.
        assert est.rto < 200 * MILLISECONDS

    def test_reset_backoff_explicit(self):
        est = RttEstimator(initial_rto=100 * MILLISECONDS)
        est.on_timeout()
        est.reset_backoff()
        assert est.rto == 100 * MILLISECONDS

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator().sample(-1)

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            RttEstimator(initial_rto=1, rto_min=10, rto_max=100)

    def test_samples_counter(self):
        est = RttEstimator()
        est.sample(1000)
        est.sample(1000)
        assert est.samples == 2
