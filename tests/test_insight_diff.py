"""Timeline alignment and divergence reporting."""

from repro.harness.config import PolicyName
from repro.harness.figures import Fig3Config, run_fig3
from repro.insight import (
    InsightConfig,
    Timeline,
    TimelineFrame,
    diff_timelines,
    loads,
    render_diff,
)
from repro.units import MILLISECONDS, SECONDS

INTERVAL = 10 * MILLISECONDS


def timeline(frames, meta=None):
    built = Timeline()
    built.meta = {"frame_interval": INTERVAL, **(meta or {})}
    for frame in frames:
        built.append(frame)
    return built


def frame(time, weights, mode=None, breakers=None, slo_state=None):
    return TimelineFrame(
        time=time,
        weights=weights,
        ladder_mode=mode,
        breakers=breakers or {},
        slo=None if slo_state is None else {"state": slo_state},
    )


class TestAlignment:
    def test_identical_timelines_do_not_diverge(self):
        frames = [frame(t * INTERVAL, {"a": 1.0, "b": 1.0}) for t in range(5)]
        assert diff_timelines(timeline(frames), timeline(list(frames))) == []

    def test_offset_capture_times_still_align(self):
        # Frames land a few packets apart in the two runs; same bucket.
        a = timeline([frame(10 * MILLISECONDS, {"a": 1.0, "b": 1.0})])
        b = timeline([frame(10 * MILLISECONDS + 123_456, {"a": 1.0, "b": 1.0})])
        assert diff_timelines(a, b) == []

    def test_unshared_buckets_are_skipped(self):
        a = timeline([frame(0, {"a": 1.0}), frame(INTERVAL, {"a": 1.0})])
        b = timeline([frame(0, {"a": 1.0})])  # shorter run
        assert diff_timelines(a, b) == []


class TestDivergence:
    def test_weight_divergence_past_epsilon(self):
        a = timeline([frame(0, {"a": 1.0, "b": 1.0})])
        b = timeline([frame(0, {"a": 1.8, "b": 0.2})])
        found = diff_timelines(a, b)
        assert [d.field for d in found] == ["weights"]

    def test_weights_compared_normalized(self):
        # 2:2 and 1:1 are the same routing distribution.
        a = timeline([frame(0, {"a": 2.0, "b": 2.0})])
        b = timeline([frame(0, {"a": 1.0, "b": 1.0})])
        assert diff_timelines(a, b) == []

    def test_mode_and_breaker_and_slo_divergence(self):
        a = timeline(
            [frame(0, {"a": 1.0}, mode="FEEDBACK", breakers={"a": "closed"}, slo_state="ok")]
        )
        b = timeline(
            [frame(0, {"a": 1.0}, mode="FALLBACK", breakers={"a": "open"}, slo_state="burning")]
        )
        fields = sorted(d.field for d in diff_timelines(a, b))
        assert fields == ["breaker", "mode", "slo"]

    def test_epsilon_is_tunable(self):
        a = timeline([frame(0, {"a": 1.0, "b": 1.0})])
        b = timeline([frame(0, {"a": 1.1, "b": 0.9})])
        assert diff_timelines(a, b, weight_eps=0.2) == []
        assert diff_timelines(a, b, weight_eps=0.01)


class TestRendering:
    def test_render_mentions_divergence_and_first_point(self):
        a = timeline([frame(0, {"a": 1.0, "b": 1.0})], meta={"seed": 1})
        b = timeline([frame(0, {"a": 1.9, "b": 0.1})], meta={"seed": 2})
        text = render_diff(a, b)
        assert "divergence" in text
        assert "first divergence at" in text

    def test_render_agreeing_runs(self):
        frames = [frame(0, {"a": 1.0})]
        text = render_diff(timeline(frames), timeline(list(frames)))
        assert "no divergence" in text


class TestEndToEnd:
    def test_two_seeds_of_fig3_diverge_via_artifacts(self):
        timelines = []
        for seed in (2, 3):
            fig3 = run_fig3(
                Fig3Config(
                    seed=seed,
                    duration=int(0.6 * SECONDS),
                    insight=InsightConfig(enabled=True),
                ),
                policies=(PolicyName.FEEDBACK,),
            )
            insight = fig3.results["feedback"].scenario.insight
            timelines.append(loads(insight.dumps()))  # via the artifact
        text = render_diff(timelines[0], timelines[1])
        assert "aligned buckets:" in text
        # Different seeds shift weight at different times.
        assert "divergence" in text
