"""Property-based tests (hypothesis) for core data structures and the
paper's algorithms.

These check invariants over generated inputs rather than examples:
FIXEDTIMEOUT's batch algebra, ENSEMBLETIMEOUT's selection domain, Maglev
apportionment, the sliding-window quantile against a model, the LRU
store against a reference dict, and the simulator's ordering guarantee.
"""

import random

import pytest
from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.app.kvstore import KeyValueStore
from repro.core.controller import AlphaShiftController, ControllerConfig
from repro.core.ensemble import EnsembleConfig, EnsembleTimeout
from repro.core.estimator import BackendLatencyEstimator, EstimatorConfig
from repro.core.fixed_timeout import FixedTimeout
from repro.lb.backend import Backend, BackendPool
from repro.lb.maglev import MaglevTable
from repro.sim.engine import Simulator
from repro.telemetry.quantiles import WindowedQuantile, exact_quantile
from repro.telemetry.summary import summarize


# ----------------------------------------------------------------------
# FIXEDTIMEOUT (Algorithm 1)
# ----------------------------------------------------------------------

gaps = st.lists(st.integers(min_value=1, max_value=10_000_000), min_size=1, max_size=200)


@given(gaps=gaps, delta=st.integers(min_value=1, max_value=1_000_000))
def test_fixed_timeout_samples_are_sums_of_batch_gaps(gaps, delta):
    """Every T_LB equals the time between two batch-head arrivals, and the
    sum of all samples never exceeds the total elapsed time."""
    ft = FixedTimeout(delta)
    now = 0
    arrivals = [0]
    ft.observe(0)
    samples = []
    for gap in gaps:
        now += gap
        arrivals.append(now)
        sample = ft.observe(now)
        if sample is not None:
            samples.append(sample)
    assert all(s > delta for s in samples)  # a batch gap exceeds delta
    assert sum(samples) <= now


@given(gaps=gaps, delta=st.integers(min_value=1, max_value=1_000_000))
def test_fixed_timeout_sample_count_equals_long_gaps(gaps, delta):
    """A sample is emitted exactly when an inter-packet gap exceeds δ."""
    ft = FixedTimeout(delta)
    now = 0
    ft.observe(0)
    emitted = 0
    for gap in gaps:
        now += gap
        if ft.observe(now) is not None:
            emitted += 1
    expected = sum(1 for gap in gaps if gap > delta)
    assert emitted == expected


@given(
    gaps=gaps,
    deltas=st.lists(
        st.integers(min_value=1, max_value=1_000_000),
        min_size=2,
        max_size=6,
        unique=True,
    ),
)
def test_smaller_delta_never_fewer_samples(gaps, deltas):
    """Monotonicity behind the sample cliff: smaller timeouts can only
    produce at least as many samples (the paper's Fig 2a intuition)."""
    deltas = sorted(deltas)
    counts = []
    for delta in deltas:
        ft = FixedTimeout(delta)
        now = 0
        ft.observe(0)
        count = 0
        for gap in gaps:
            now += gap
            if ft.observe(now) is not None:
                count += 1
        counts.append(count)
    assert counts == sorted(counts, reverse=True)


# ----------------------------------------------------------------------
# ENSEMBLETIMEOUT (Algorithm 2)
# ----------------------------------------------------------------------


@given(gaps=gaps)
@settings(max_examples=50)
def test_ensemble_selection_stays_in_domain(gaps):
    ensemble = EnsembleTimeout(
        EnsembleConfig(timeouts=[1_000, 10_000, 100_000], epoch=500_000)
    )
    now = 0
    for gap in gaps:
        now += gap
        sample = ensemble.observe(now)
        assert ensemble.current_timeout in (1_000, 10_000, 100_000)
        if sample is not None:
            assert sample > 0


@given(gaps=gaps)
@settings(max_examples=50)
def test_ensemble_counts_match_standalone_fixed_timeouts(gaps):
    """The ensemble's per-timeout counters equal independent FIXEDTIMEOUT
    runs over the same arrivals (within one epoch)."""
    timeouts = [1_000, 10_000, 100_000]
    huge_epoch = 10**15  # never roll over
    ensemble = EnsembleTimeout(EnsembleConfig(timeouts=timeouts, epoch=huge_epoch))
    independent = [FixedTimeout(d) for d in timeouts]
    now = 0
    ensemble.observe(0)
    for ft in independent:
        ft.observe(0)
    expected = [0, 0, 0]
    for gap in gaps:
        now += gap
        ensemble.observe(now)
        for index, ft in enumerate(independent):
            if ft.observe(now) is not None:
                expected[index] += 1
    assert ensemble.sample_counts() == expected


# ----------------------------------------------------------------------
# Maglev
# ----------------------------------------------------------------------

weight_maps = st.dictionaries(
    keys=st.text(alphabet="abcdefgh", min_size=1, max_size=4),
    values=st.floats(min_value=0.01, max_value=100.0),
    min_size=1,
    max_size=8,
)


@given(weights=weight_maps)
@settings(max_examples=30)
def test_maglev_slots_proportional_and_complete(weights):
    table = MaglevTable(251)
    table.build(weights)
    counts = table.slot_counts()
    assert sum(counts.values()) == 251
    assert set(counts) == set(weights)
    total_weight = sum(weights.values())
    for name, count in counts.items():
        expected = 251 * weights[name] / total_weight
        assert abs(count - expected) <= max(3.0, 0.05 * 251)


@given(weights=weight_maps, flows=st.lists(st.integers(), min_size=1, max_size=50))
@settings(max_examples=30)
def test_maglev_lookup_total_function(weights, flows):
    table = MaglevTable(251)
    table.build(weights)
    for flow in flows:
        assert table.lookup(flow) in weights


# ----------------------------------------------------------------------
# Telemetry models
# ----------------------------------------------------------------------


@given(
    values=st.lists(
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
        min_size=1,
        max_size=300,
    ),
    window=st.integers(min_value=1, max_value=50),
    q=st.floats(min_value=0.0, max_value=1.0),
)
def test_windowed_quantile_matches_reference(values, window, q):
    wq = WindowedQuantile(window)
    for value in values:
        wq.observe(value)
    reference = values[-window:]
    assert wq.quantile(q) == exact_quantile(reference, q)


@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        min_size=1,
        max_size=200,
    )
)
def test_summary_percentiles_are_ordered_and_bounded(values):
    summary = summarize(values)
    assert summary.min <= summary.p50 <= summary.p90 <= summary.p95
    assert summary.p95 <= summary.p99 <= summary.max
    # The mean is computed as sum/len and may exceed max (or undershoot
    # min) by an ulp when all values are equal; allow that rounding.
    slack = 1e-9 * max(abs(summary.min), abs(summary.max), 1.0)
    assert summary.min - slack <= summary.mean <= summary.max + slack


# ----------------------------------------------------------------------
# KV store vs reference model
# ----------------------------------------------------------------------

ops = st.lists(
    st.tuples(
        st.sampled_from(["get", "set", "delete"]),
        st.integers(min_value=0, max_value=9),  # key id
        st.integers(min_value=1, max_value=50),  # value size
    ),
    max_size=200,
)


@given(operations=ops)
def test_kvstore_unbounded_matches_dict(operations):
    store = KeyValueStore()
    model = {}
    for op, key_id, size in operations:
        key = "k%d" % key_id
        if op == "set":
            store.set(key, size)
            model[key] = size
        elif op == "get":
            assert store.get(key) == model.get(key)
        else:
            assert store.delete(key) == (model.pop(key, None) is not None)
    assert store.used_bytes == sum(model.values())


@given(operations=ops, capacity=st.integers(min_value=50, max_value=300))
def test_kvstore_lru_matches_ordered_dict_model(operations, capacity):
    store = KeyValueStore(capacity_bytes=capacity)
    model = OrderedDict()

    def model_evict():
        used = sum(model.values())
        while used > capacity and len(model) > 1:
            _k, size = model.popitem(last=False)
            used -= size

    for op, key_id, size in operations:
        key = "k%d" % key_id
        if op == "set":
            store.set(key, size)
            model.pop(key, None)
            model[key] = size
            model_evict()
        elif op == "get":
            expected = model.get(key)
            if expected is not None:
                model.move_to_end(key)
            assert store.get(key) == expected
        else:
            assert store.delete(key) == (model.pop(key, None) is not None)
    assert store.used_bytes == sum(model.values())


# ----------------------------------------------------------------------
# Controller conservation
# ----------------------------------------------------------------------


@given(
    latencies=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=10_000_000),
            st.integers(min_value=1, max_value=10_000_000),
        ),
        min_size=1,
        max_size=50,
    ),
    alpha=st.floats(min_value=0.01, max_value=0.5),
)
@settings(max_examples=50)
def test_controller_conserves_total_weight_and_respects_floor(latencies, alpha):
    pool = BackendPool([Backend("a"), Backend("b"), Backend("c")])
    estimator = BackendLatencyEstimator(EstimatorConfig(min_samples=1))
    controller = AlphaShiftController(
        pool,
        estimator,
        ControllerConfig(alpha=alpha, weight_floor=0.05, hysteresis_ratio=1.0),
    )
    now = 0
    for lat_a, lat_b in latencies:
        now += 1_000_000
        estimator.observe("a", now, lat_a)
        estimator.observe("b", now, lat_b)
        estimator.observe("c", now, (lat_a + lat_b) // 2)
        controller.maybe_shift(now)
        weights = pool.weights()
        assert abs(sum(weights.values()) - 3.0) < 1e-9
        assert all(w >= 0.05 * 3.0 - 1e-9 for w in weights.values())


# ----------------------------------------------------------------------
# Weight renormalization (strategies)
# ----------------------------------------------------------------------


@given(
    weights=st.dictionaries(
        keys=st.sampled_from(["a", "b", "c", "d", "e"]),
        values=st.floats(min_value=0.0, max_value=100.0),
        min_size=1,
        max_size=5,
    ),
    total=st.floats(min_value=0.5, max_value=50.0),
    floor_frac=st.floats(min_value=0.0, max_value=0.19),
)
def test_renormalize_with_floor_conserves_total_and_floors(
    weights, total, floor_frac
):
    from repro.controllers.base import renormalize_with_floor

    floor = floor_frac * total / max(1, len(weights))
    result = renormalize_with_floor(weights, total, floor)
    assert set(result) == set(weights)
    assert sum(result.values()) == pytest.approx(total, rel=1e-6)
    for value in result.values():
        assert value >= floor - 1e-9


# ----------------------------------------------------------------------
# ConnTrack per-backend counts vs a reference model
# ----------------------------------------------------------------------


@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["insert", "lookup"]),
            st.integers(min_value=0, max_value=9),   # flow id
            st.integers(min_value=0, max_value=2),   # backend id
        ),
        max_size=150,
    )
)
def test_conntrack_counts_match_reference(operations):
    from repro.lb.conntrack import ConnTrack
    from repro.net.addr import FlowKey

    track = ConnTrack()
    model = {}
    now = 0
    for op, flow_id, backend_id in operations:
        now += 1
        flow = FlowKey("c", 40_000 + flow_id, "vip", 80)
        backend = "s%d" % backend_id
        if op == "insert":
            track.insert(flow, backend, now)
            model[flow] = backend
        else:
            assert track.lookup(flow, now) == model.get(flow)
    from collections import Counter

    expected = Counter(model.values())
    for backend in ("s0", "s1", "s2"):
        assert track.active_flows(backend) == expected.get(backend, 0)


# ----------------------------------------------------------------------
# Simulator ordering
# ----------------------------------------------------------------------


@given(
    delays=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=100)
)
def test_simulator_fires_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
