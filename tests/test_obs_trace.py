"""Causal tracer: span recording, shift attribution, rendering."""

from repro.core.controller import ShiftEvent
from repro.net.addr import Endpoint, FlowKey
from repro.obs.trace import (
    CausalTracer,
    render_request_tree,
    render_shift_attribution,
    render_shift_list,
)

FLOW_A = FlowKey("client0", 40000, "vip", 11211)
FLOW_B = FlowKey("client0", 40001, "vip", 11211)


def make_tracer():
    tracer = CausalTracer()
    tracer.on_send(100, 1, "client0", 40000, False)
    tracer.on_route(110, FLOW_A, "server0")
    tracer.on_route(111, FLOW_B, "server1")
    tracer.on_sample(200, FLOW_A, "server0", 90, 64_000)
    tracer.on_sample(300, FLOW_B, "server1", 80, 64_000)
    tracer.on_sample(400, FLOW_A, "server0", 85, 64_000)
    tracer.on_response(500, 1, "server0", 10, 50, 400)
    return tracer


def make_shift(time=450, from_backend="server0", best="server1", **kwargs):
    return ShiftEvent(
        time=time,
        from_backend=from_backend,
        worst_estimate=900.0,
        best_estimate=100.0,
        weights_after={"server0": 0.9, "server1": 1.1},
        best_backend=best,
        **kwargs,
    )


class TestRecording:
    def test_spans_recorded(self):
        tracer = make_tracer()
        assert len(tracer.sends) == 1
        assert len(tracer.routes) == 2
        assert len(tracer.samples) == 3
        assert tracer.responses[1].server == "server0"

    def test_route_keeps_first_packet_only(self):
        tracer = CausalTracer()
        tracer.on_route(10, FLOW_A, "server0")
        tracer.on_route(20, FLOW_A, "server0")
        assert tracer.routes[FLOW_A].time == 10
        assert len(tracer) == 1

    def test_max_events_counts_drops(self):
        tracer = CausalTracer(max_events=2)
        for i in range(5):
            tracer.on_send(i, i, "client0", 40000, False)
        assert len(tracer.sends) == 2
        assert tracer.dropped == 3

    def test_sends_for_collects_retries(self):
        tracer = CausalTracer()
        tracer.on_send(100, 7, "client0", 40000, False)
        tracer.on_send(900, 7, "client0", 40001, True)
        sends = tracer.sends_for(7)
        assert [s.retry for s in sends] == [False, True]

    def test_batch_start(self):
        tracer = make_tracer()
        sample = tracer.samples[0]
        assert sample.batch_start == sample.time - sample.t_lb

    def test_samples_for_flow(self):
        tracer = make_tracer()
        assert [s.time for s in tracer.samples_for_flow(FLOW_A)] == [200, 400]


class TestAttribution:
    def test_contributing_samples_limited_to_involved_backends(self):
        tracer = make_tracer()
        samples = tracer.contributing_samples(make_shift(best=None), window=64)
        assert {s.backend for s in samples} == {"server0"}

    def test_best_backend_included(self):
        tracer = make_tracer()
        samples = tracer.contributing_samples(make_shift(), window=64)
        assert {s.backend for s in samples} == {"server0", "server1"}

    def test_samples_after_shift_excluded(self):
        tracer = make_tracer()
        samples = tracer.contributing_samples(make_shift(time=250), window=64)
        assert [s.time for s in samples] == [200]

    def test_window_caps_per_backend(self):
        tracer = CausalTracer()
        for i in range(10):
            tracer.on_sample(i * 10, FLOW_A, "server0", 5, 64_000)
        shift = make_shift(time=1000, best=None)
        samples = tracer.contributing_samples(shift, window=3)
        assert [s.time for s in samples] == [70, 80, 90]

    def test_wildcard_shift_involves_all_backends(self):
        tracer = make_tracer()
        shift = ShiftEvent(
            time=450,
            from_backend="*",
            worst_estimate=0.0,
            best_estimate=0.0,
            weights_after={},
            reason="mode-change",
        )
        samples = tracer.contributing_samples(shift, window=64)
        assert {s.backend for s in samples} == {"server0", "server1"}

    def test_first_shift_containing(self):
        tracer = make_tracer()
        shifts = [make_shift(time=150), make_shift(time=450)]
        sample = tracer.samples[0]  # t=200: after shift 0, inside shift 1
        assert tracer.first_shift_containing(sample, shifts, window=64) == 1


class TestRendering:
    def test_shift_list_counts(self):
        tracer = make_tracer()
        out = render_shift_list(tracer, [make_shift()], window=64)
        assert "shift #0" in out
        assert "[3 contributing samples]" in out

    def test_attribution_table(self):
        tracer = make_tracer()
        out = render_shift_attribution(tracer, [make_shift()], 0, window=64)
        assert "T_LB" in out
        assert "server0" in out and "server1" in out
        assert "last 64 per backend" in out

    def test_attribution_empty(self):
        tracer = CausalTracer()
        out = render_shift_attribution(tracer, [make_shift()], 0, window=64)
        assert "none recorded" in out

    def test_request_tree_full_chain(self):
        tracer = make_tracer()
        out = render_request_tree(
            tracer,
            1,
            [make_shift()],
            window=64,
            fault_windows=[("delay", ("server0",), 0, None)],
            vip=Endpoint("vip", 11211),
        )
        assert "request 1" in out
        assert "LB routed flow" in out
        assert "server0 served" in out
        assert "fault window crossed" in out
        assert "contributed to shift #0" in out

    def test_request_tree_unknown_request(self):
        out = render_request_tree(CausalTracer(), 99, [], window=64)
        assert "no trace spans" in out


class TestCrossPlaneAttribution:
    """Fleet scale spans and campaign violations in the shift window."""

    def scale(self, time, direction="in"):
        from repro.fleet.autoscaler import ScalingDecision

        return ScalingDecision(
            time=time,
            policy="target-tracking",
            direction=direction,
            reason="p99 over target",
            metric=3.2,
            before=4,
            after=3 if direction == "in" else 5,
        )

    def violation(self, time):
        from repro.campaign.audit import ViolationEvent

        return ViolationEvent(
            time=time,
            invariant="no-dark-routing",
            message="flow routed to draining server2",
        )

    def test_scales_in_window_rendered(self):
        tracer = make_tracer()
        # Attribution window is [min batch_start, shift.time] = [110, 450].
        out = render_shift_attribution(
            tracer, [make_shift()], 0, window=64,
            scales=[self.scale(250)],
        )
        assert "fleet scaling decisions in attribution window:" in out
        assert "target-tracking in: 4 -> 3" in out
        assert "p99 over target" in out

    def test_scales_outside_window_omitted(self):
        tracer = make_tracer()
        out = render_shift_attribution(
            tracer, [make_shift()], 0, window=64,
            scales=[self.scale(50), self.scale(9_000)],
        )
        assert "fleet scaling" not in out

    def test_violations_in_window_rendered(self):
        tracer = make_tracer()
        out = render_shift_attribution(
            tracer, [make_shift()], 0, window=64,
            events=[self.violation(300)],
        )
        assert "invariant violations in attribution window:" in out
        assert "[no-dark-routing]" in out
        assert "draining server2" in out

    def test_violations_outside_window_omitted(self):
        tracer = make_tracer()
        out = render_shift_attribution(
            tracer, [make_shift()], 0, window=64,
            events=[self.violation(50)],
        )
        assert "invariant violations" not in out

    def test_no_cross_plane_sections_by_default(self):
        tracer = make_tracer()
        out = render_shift_attribution(tracer, [make_shift()], 0, window=64)
        assert "fleet scaling" not in out
        assert "invariant violations" not in out

    def test_empty_attribution_windows_over_shift_instant(self):
        # With no samples the window collapses to the shift instant:
        # only a decision at exactly shift.time survives the filter.
        out = render_shift_attribution(
            CausalTracer(), [make_shift(time=450)], 0, window=64,
            scales=[self.scale(450), self.scale(449, direction="out")],
        )
        assert "fleet scaling decisions in attribution window:" in out
        assert "in: 4 -> 3" in out
        assert "out: 4 -> 5" not in out
