"""Signal-quality grading: age-driven trust in per-backend estimates.

The tracker converts silence into an explicit state: FRESH while
samples keep landing, STALE once the last one is older than
``stale_after`` (hold, don't shift), INVALID past ``invalid_after``
(exclude from ranking).  These tests pin the grade boundaries, the
confidence decay curve, and the windowed rate/dispersion metrics.
"""

import math

import pytest

from repro.resilience.quality import (
    SignalGrade,
    SignalQualityConfig,
    SignalQualityTracker,
)
from repro.units import MILLISECONDS


def make_tracker(**kwargs):
    defaults = dict(
        window=100 * MILLISECONDS,
        stale_after=50 * MILLISECONDS,
        invalid_after=200 * MILLISECONDS,
        decay_tau=100 * MILLISECONDS,
        min_samples=3,
    )
    defaults.update(kwargs)
    return SignalQualityTracker(SignalQualityConfig(**defaults))


def feed(tracker, backend, times, value=1.0):
    for t in times:
        tracker.observe(backend, t, value)


class TestGrading:
    def test_unknown_backend_is_invalid(self):
        tracker = make_tracker()
        assert tracker.grade("ghost", 0) is SignalGrade.INVALID

    def test_fresh_after_min_samples(self):
        tracker = make_tracker()
        feed(tracker, "s0", [0, 1 * MILLISECONDS, 2 * MILLISECONDS])
        assert tracker.grade("s0", 3 * MILLISECONDS) is SignalGrade.FRESH

    def test_starved_backend_is_stale_not_fresh(self):
        """Fewer than min_samples: recent but unproven — STALE."""
        tracker = make_tracker(min_samples=3)
        feed(tracker, "s0", [0, 1 * MILLISECONDS])
        assert tracker.grade("s0", 2 * MILLISECONDS) is SignalGrade.STALE

    def test_age_boundaries(self):
        tracker = make_tracker()
        last = 10 * MILLISECONDS
        feed(tracker, "s0", [0, 5 * MILLISECONDS, last])
        cfg = tracker.config
        assert tracker.grade("s0", last + cfg.stale_after - 1) is SignalGrade.FRESH
        assert tracker.grade("s0", last + cfg.stale_after) is SignalGrade.STALE
        assert tracker.grade("s0", last + cfg.invalid_after - 1) is SignalGrade.STALE
        assert tracker.grade("s0", last + cfg.invalid_after) is SignalGrade.INVALID

    def test_registration_anchors_the_age_clock(self):
        """A backend that never samples ages from register(), not t=0:
        startup silence becomes STALE then INVALID on its own clock."""
        tracker = make_tracker()
        born = 1000 * MILLISECONDS
        tracker.register("s0", born)
        assert tracker.grade("s0", born) is SignalGrade.STALE  # no samples yet
        assert (
            tracker.grade("s0", born + tracker.config.invalid_after)
            is SignalGrade.INVALID
        )

    def test_register_is_idempotent(self):
        tracker = make_tracker()
        tracker.register("s0", 0)
        feed(tracker, "s0", [0, 1, 2])
        tracker.register("s0", 500 * MILLISECONDS)  # must not reset state
        assert tracker.quality("s0", 3).samples == 3

    def test_new_samples_refresh_a_stale_signal(self):
        tracker = make_tracker()
        feed(tracker, "s0", [0, 1 * MILLISECONDS, 2 * MILLISECONDS])
        late = 100 * MILLISECONDS
        assert tracker.grade("s0", late) is SignalGrade.STALE
        tracker.observe("s0", late, 1.0)
        assert tracker.grade("s0", late + 1) is SignalGrade.FRESH

    def test_forget_drops_state(self):
        tracker = make_tracker()
        feed(tracker, "s0", [0, 1, 2])
        tracker.forget("s0")
        assert tracker.grade("s0", 3) is SignalGrade.INVALID
        assert "s0" not in tracker.backends()


class TestConfidence:
    def test_full_confidence_while_fresh(self):
        tracker = make_tracker()
        feed(tracker, "s0", [0])
        assert tracker.confidence("s0", tracker.config.stale_after) == 1.0

    def test_decays_past_stale_and_zero_at_invalid(self):
        tracker = make_tracker()
        feed(tracker, "s0", [0])
        cfg = tracker.config
        mid = cfg.stale_after + cfg.decay_tau
        expected = math.exp(-1.0)
        assert tracker.confidence("s0", mid) == pytest.approx(expected)
        assert tracker.confidence("s0", cfg.invalid_after) == 0.0
        assert tracker.confidence("ghost", 0) == 0.0

    def test_monotone_nonincreasing_with_age(self):
        tracker = make_tracker()
        feed(tracker, "s0", [0])
        values = [
            tracker.confidence("s0", t * MILLISECONDS) for t in range(0, 220, 10)
        ]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestWindowedMetrics:
    def test_rate_counts_only_the_window(self):
        tracker = make_tracker(window=100 * MILLISECONDS)
        # 10 samples spread over 90 ms, then ask at 200 ms: all pruned
        # except none — wait long enough that the window is empty.
        feed(tracker, "s0", [t * 10 * MILLISECONDS for t in range(10)])
        q = tracker.quality("s0", 95 * MILLISECONDS)
        assert q.rate_hz == pytest.approx(10 / 0.1)
        q = tracker.quality("s0", 185 * MILLISECONDS)
        assert q.rate_hz == pytest.approx(1 / 0.1)  # only the t=90ms sample

    def test_dispersion_zero_for_constant_stream(self):
        tracker = make_tracker()
        feed(tracker, "s0", [0, 1, 2, 3], value=5.0)
        assert tracker.quality("s0", 4).dispersion == 0.0

    def test_dispersion_positive_for_varied_stream(self):
        tracker = make_tracker()
        for i, v in enumerate([1.0, 9.0, 1.0, 9.0]):
            tracker.observe("s0", i, v)
        assert tracker.quality("s0", 5).dispersion > 0.5

    def test_snapshot_covers_all_backends(self):
        tracker = make_tracker()
        feed(tracker, "s0", [0, 1, 2])
        tracker.register("s1", 0)
        snap = tracker.snapshot(3)
        assert sorted(snap) == ["s0", "s1"]
        assert snap["s0"].grade is SignalGrade.FRESH
        assert snap["s1"].samples == 0

    def test_unknown_backend_quality_is_empty(self):
        q = make_tracker().quality("ghost", 7)
        assert q.grade is SignalGrade.INVALID
        assert q.samples == 0
        assert q.confidence == 0.0


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(window=0),
            dict(stale_after=0),
            dict(decay_tau=0),
            dict(stale_after=50, invalid_after=50),
            dict(min_samples=0),
        ],
    )
    def test_rejects_malformed(self, kwargs):
        with pytest.raises(ValueError):
            make_tracker(**kwargs)
