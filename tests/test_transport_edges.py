"""Transport corner cases beyond the happy path."""

import pytest

from repro.errors import TransportError
from repro.net.addr import Endpoint
from repro.net.network import Network
from repro.transport.connection import ConnectionState, TransportConfig
from repro.transport.endpoint import Host
from repro.units import MICROSECONDS, MILLISECONDS, SECONDS

from tests.conftest import PairTopology, make_echo_server

ONE_WAY = 100 * MICROSECONDS


class TestSimultaneousAndRepeatedClose:
    def test_both_sides_close_at_once(self, sim, pair):
        server_conns = []

        def on_connection(conn):
            server_conns.append(conn)

        pair.server.listen(7000, on_connection)
        conn = pair.client.connect(pair.server_endpoint())
        sim.run_until(5 * MILLISECONDS)
        # Close both ends within the same instant.
        conn.close()
        server_conns[0].close()
        sim.run_until(100 * MILLISECONDS)
        assert conn.state is ConnectionState.CLOSED
        assert server_conns[0].state is ConnectionState.CLOSED
        assert pair.client.connection_count == 0
        assert pair.server.connection_count == 0

    def test_port_reusable_after_close(self, sim, pair):
        make_echo_server(pair)
        conn = pair.client.connect(pair.server_endpoint(), local_port=55_000)
        sim.run_until(5 * MILLISECONDS)
        conn.close()
        sim.run_until(50 * MILLISECONDS)
        # Same 4-tuple again: must work as a brand new connection.
        replies = []
        conn2 = pair.client.connect(pair.server_endpoint(), local_port=55_000)
        conn2.on_message = lambda c, m: replies.append(m)
        conn2.send_message("again", 64)
        sim.run_until(100 * MILLISECONDS)
        assert replies == [("echo", "again")]


class TestAbortPaths:
    def test_abort_before_establishment(self, sim, pair):
        make_echo_server(pair)
        conn = pair.client.connect(pair.server_endpoint())
        conn.abort()  # SYN still in flight
        sim.run_until(50 * MILLISECONDS)
        assert conn.state is ConnectionState.CLOSED
        assert pair.client.connection_count == 0

    def test_abort_with_unacked_data(self, sim, pair):
        make_echo_server(pair)
        conn = pair.client.connect(pair.server_endpoint())
        conn.send_message("doomed", 5000)
        sim.run_until(ONE_WAY)  # mid-flight
        conn.abort()
        sim.run_until(100 * MILLISECONDS)
        assert conn.state is ConnectionState.CLOSED
        # No retransmission storm after abort.
        sent_after = conn.stats.segments_sent
        sim.run_until(1 * SECONDS)
        assert conn.stats.segments_sent == sent_after

    def test_server_abort_notifies_client(self, sim, pair):
        server_conns = []
        pair.server.listen(7000, lambda c: server_conns.append(c))
        closed = []
        conn = pair.client.connect(pair.server_endpoint())
        conn.on_closed = lambda c: closed.append(sim.now)
        sim.run_until(5 * MILLISECONDS)
        server_conns[0].abort()
        sim.run_until(50 * MILLISECONDS)
        assert closed
        assert conn.state is ConnectionState.CLOSED


class TestTinyWindows:
    def test_window_of_one_mss_still_delivers(self, sim, pair):
        received = make_echo_server(pair)
        config = TransportConfig(window=1024, mss=1024)
        conn = pair.client.connect(pair.server_endpoint(), config)
        conn.send_message("trickle", 10_240)  # 10 windows worth
        sim.run_until(1 * SECONDS)
        assert [m for _t, m in received] == ["trickle"]
        # Stop-and-wait: roughly one segment per RTT.
        assert conn.stats.segments_sent >= 10

    def test_message_larger_than_window(self, sim, pair):
        received = make_echo_server(pair)
        config = TransportConfig(window=2048, mss=1024)
        conn = pair.client.connect(pair.server_endpoint(), config)
        conn.send_message("big", 50_000)
        sim.run_until(2 * SECONDS)
        assert [m for _t, m in received] == ["big"]


class TestPacedTransport:
    def test_paced_connection_delivers_in_order(self, sim, pair):
        received = make_echo_server(pair)
        config = TransportConfig(pacing_rate_bps=50_000_000)  # 50 Mb/s
        conn = pair.client.connect(pair.server_endpoint(), config)
        for i in range(10):
            conn.send_message(i, 1448)
        sim.run_until(1 * SECONDS)
        assert [m for _t, m in received] == list(range(10))

    def test_pacing_spreads_transmissions(self, sim):
        """Paced segments leave spaced by size/rate, not back-to-back."""
        network = Network(sim)
        client = Host(network, "client")
        server = Host(network, "server")
        network.connect_bidirectional(
            "client", "server", prop_delay=ONE_WAY
        )  # infinite bandwidth: spacing must come from the pacer alone
        server.listen(7000, lambda conn: None)
        departures = []
        network.add_tap(
            lambda pipe, pkt: departures.append(sim.now)
            if pipe == "client->server" and pkt.payload_len > 0
            else None
        )
        config = TransportConfig(
            window=64 * 1024, mss=1000, pacing_rate_bps=8_000_000  # 1 B/µs
        )
        conn = client.connect(Endpoint("server", 7000), config)
        conn.send_message("bulk", 10_000)
        sim.run_until(1 * SECONDS)
        gaps = [b - a for a, b in zip(departures, departures[1:])]
        assert gaps
        # 1000 bytes at 1 B/us = 1 ms between segments.
        for gap in gaps:
            assert gap == pytest.approx(1 * MILLISECONDS, rel=0.01)


class TestStateValidation:
    def test_server_side_open_rejected(self, sim, pair):
        server_conns = []
        pair.server.listen(7000, lambda c: server_conns.append(c))
        pair.client.connect(pair.server_endpoint())
        sim.run_until(5 * MILLISECONDS)
        with pytest.raises(TransportError):
            server_conns[0].open()

    def test_repr_smoke(self, sim, pair):
        make_echo_server(pair)
        conn = pair.client.connect(pair.server_endpoint())
        assert "client" in repr(conn)
        assert "Host(" in repr(pair.client)
