"""Timeline ring, queries, and the JSONL round trip."""

import pytest

from repro.insight import Annotation, Timeline, TimelineFrame, load_timeline, loads


def frame(time, **overrides):
    base = dict(weights={"server0": 1.0, "server1": 1.0})
    base.update(overrides)
    return TimelineFrame(time=time, **base)


class TestRing:
    def test_append_keeps_time_order(self):
        timeline = Timeline()
        for t in (10, 20, 30):
            timeline.append(frame(t))
        assert [f.time for f in timeline.frames] == [10, 20, 30]
        assert len(timeline) == 3
        assert timeline.dropped == 0

    def test_ring_evicts_oldest_and_counts(self):
        timeline = Timeline(max_frames=2)
        for t in (10, 20, 30, 40):
            timeline.append(frame(t))
        assert [f.time for f in timeline.frames] == [30, 40]
        assert timeline.dropped == 2

    def test_max_frames_must_be_positive(self):
        with pytest.raises(ValueError):
            Timeline(max_frames=0)


class TestQueries:
    def test_frame_at_or_before(self):
        timeline = Timeline()
        for t in (10, 20, 30):
            timeline.append(frame(t))
        assert timeline.frame_at_or_before(25).time == 20
        assert timeline.frame_at_or_before(30).time == 30
        assert timeline.frame_at_or_before(5) is None

    def test_frames_between_inclusive(self):
        timeline = Timeline()
        for t in (10, 20, 30):
            timeline.append(frame(t))
        assert [f.time for f in timeline.frames_between(10, 20)] == [10, 20]

    def test_annotations_between_filters_by_kind(self):
        timeline = Timeline()
        timeline.annotate(Annotation(time=5, kind="shift", label="a"))
        timeline.annotate(Annotation(time=15, kind="slo_alert", label="b"))
        timeline.annotate(Annotation(time=25, kind="shift", label="c"))
        assert [
            a.label for a in timeline.annotations_between(0, 30, kind="shift")
        ] == ["a", "c"]
        assert [a.label for a in timeline.alerts()] == ["b"]


class TestSerialization:
    def build(self):
        timeline = Timeline(max_frames=8)
        timeline.meta = {"policy": "feedback", "seed": 3, "frame_interval": 10}
        timeline.append(
            frame(
                10,
                estimates={"server0": 420.5},
                grades={"server0": "fresh"},
                ladder_mode="FEEDBACK",
                cliff_pick=600000,
                faults=[["delay", ["server0"], 5, None]],
                slo={"state": "ok", "burn_short": 0.0},
            )
        )
        timeline.append(frame(20))
        timeline.annotate(
            Annotation(time=12, kind="shift", label="s", data={"from": "server0"})
        )
        return timeline

    def test_dumps_loads_round_trip(self):
        timeline = self.build()
        text = timeline.dumps()
        loaded = loads(text)
        assert [f.time for f in loaded.frames] == [10, 20]
        assert loaded.frames[0].estimates == {"server0": 420.5}
        assert loaded.frames[0].faults == [["delay", ["server0"], 5, None]]
        assert loaded.frames[0].slo["state"] == "ok"
        assert loaded.annotations[0].kind == "shift"
        assert loaded.annotations[0].data == {"from": "server0"}
        assert loaded.meta["policy"] == "feedback"
        # The round trip is idempotent byte for byte.
        assert loads(loaded.dumps()).dumps() == loaded.dumps()

    def test_annotation_kind_survives_the_record_discriminator(self):
        # Annotation.kind must not collide with the line's "kind" field.
        timeline = Timeline()
        timeline.annotate(Annotation(time=1, kind="breaker", label="x"))
        assert loads(timeline.dumps()).annotations[0].kind == "breaker"

    def test_export_and_load_file(self, tmp_path):
        timeline = self.build()
        path = str(tmp_path / "run.jsonl")
        timeline.export_jsonl(path, meta={"extra": "yes"})
        loaded = load_timeline(path)
        assert loaded.meta["extra"] == "yes"
        assert len(loaded) == 2

    def test_meta_counts_recorded(self):
        timeline = Timeline(max_frames=1)
        timeline.append(frame(10))
        timeline.append(frame(20))
        loaded = loads(timeline.dumps())
        assert loaded.meta["frames"] == 1
        assert loaded.meta["dropped_frames"] == 1
        assert loaded.dropped == 1

    def test_loads_rejects_garbage(self):
        with pytest.raises(ValueError):
            loads("not json\n")
        with pytest.raises(ValueError):
            loads('{"kind": "mystery"}\n')
