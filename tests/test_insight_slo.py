"""The SLO monitor: burn rates, the multiwindow rule, cooldown."""

import pytest

from repro.errors import ConfigError
from repro.insight import SLOConfig, SLOMonitor
from repro.units import MILLISECONDS


def config(**overrides):
    base = dict(
        target=2 * MILLISECONDS,
        goal=0.9,                       # budget = 10%
        short_window=100 * MILLISECONDS,
        long_window=500 * MILLISECONDS,
        burn_threshold=2.0,
        cooldown=200 * MILLISECONDS,
    )
    base.update(overrides)
    return SLOConfig(**base)


def feed(monitor, start, count, bad_every=None, gap=MILLISECONDS):
    """``count`` requests from ``start``; every ``bad_every``th is slow."""
    for i in range(count):
        latency = (
            3 * MILLISECONDS
            if bad_every is not None and i % bad_every == 0
            else MILLISECONDS
        )
        monitor.observe(start + i * gap, latency)
    return start + count * gap


class TestConfig:
    def test_validate_rejects_bad_values(self):
        for bad in (
            config(target=0),
            config(goal=1.0),
            config(goal=0.0),
            config(short_window=0),
            config(short_window=600 * MILLISECONDS),  # > long_window
            config(burn_threshold=0),
            config(cooldown=-1),
        ):
            with pytest.raises(ConfigError):
                bad.validate()

    def test_defaults_validate(self):
        SLOConfig().validate()


class TestBurnRate:
    def test_no_events_burns_zero(self):
        monitor = SLOMonitor(config())
        assert monitor.burn_rate(MILLISECONDS, 100 * MILLISECONDS) == 0.0

    def test_burn_is_bad_fraction_over_budget(self):
        monitor = SLOMonitor(config())
        # 2 bad of 10 = 20% bad over a 10% budget = 2.0x.
        now = feed(monitor, 0, 10, bad_every=5)
        assert monitor.burn_rate(now, 100 * MILLISECONDS) == pytest.approx(2.0)

    def test_window_excludes_old_events(self):
        monitor = SLOMonitor(config())
        monitor.observe(0, 3 * MILLISECONDS)             # bad, old
        monitor.observe(95 * MILLISECONDS, MILLISECONDS)  # good, recent
        burn = monitor.burn_rate(100 * MILLISECONDS, 10 * MILLISECONDS)
        assert burn == 0.0  # only the good event is inside the window


class TestAlerting:
    def test_sustained_burn_fires_once_per_cooldown(self):
        monitor = SLOMonitor(config())
        now = feed(monitor, 0, 400, bad_every=3)  # ~33% bad: 3.3x burn
        alert = monitor.evaluate(now)
        assert alert is not None
        assert alert.burn_short >= 2.0 and alert.burn_long >= 2.0
        assert monitor.alerts == [alert]
        # Inside the cooldown: silent even though still burning.
        assert monitor.evaluate(now + MILLISECONDS) is None
        # Past the cooldown (and still burning): fires again.
        later = feed(monitor, now + 250 * MILLISECONDS, 100, bad_every=3)
        assert monitor.evaluate(later) is not None
        assert len(monitor.alerts) == 2

    def test_short_spike_alone_does_not_fire(self):
        monitor = SLOMonitor(config())
        # A long healthy history, then a brief spike: the long window
        # dilutes it below threshold, so no alert (the multiwindow rule).
        now = feed(monitor, 0, 450)
        now = feed(monitor, now, 30, bad_every=1)
        assert monitor.burn_rate(now, config().short_window) >= 2.0
        assert monitor.burn_rate(now, config().long_window) < 2.0
        assert monitor.evaluate(now) is None

    def test_healthy_traffic_never_fires(self):
        monitor = SLOMonitor(config())
        now = feed(monitor, 0, 300)
        assert monitor.evaluate(now) is None
        assert monitor.alerts == []

    def test_describe_mentions_burns(self):
        monitor = SLOMonitor(config())
        now = feed(monitor, 0, 100, bad_every=2)
        alert = monitor.evaluate(now)
        text = alert.describe()
        assert "SLO burn-rate alert" in text
        assert "short=" in text and "long=" in text


class TestSnapshot:
    def test_none_before_traffic(self):
        assert SLOMonitor(config()).snapshot(0) is None

    def test_snapshot_states(self):
        monitor = SLOMonitor(config())
        now = feed(monitor, 0, 100)
        snap = monitor.snapshot(now)
        assert snap["state"] == "ok"
        assert snap["observed"] == 100 and snap["bad_observed"] == 0
        now = feed(monitor, now, 400, bad_every=2)
        snap = monitor.snapshot(now)
        assert snap["state"] == "burning"
        assert snap["window_bad"] > 0
        assert snap["burn_long"] >= 2.0
