"""Shared fixtures: simulators, mini-topologies, tiny scenarios."""

from __future__ import annotations

import pytest

from repro.net.addr import Endpoint
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.transport.connection import TransportConfig
from repro.transport.endpoint import Host
from repro.units import GIGABITS_PER_SECOND, MICROSECONDS


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def network(sim: Simulator) -> Network:
    return Network(sim)


class PairTopology:
    """client ⇄ server over symmetric 100 µs pipes at 10 Gb/s."""

    def __init__(self, sim: Simulator, one_way: int = 100 * MICROSECONDS):
        self.sim = sim
        self.network = Network(sim)
        self.client = Host(self.network, "client")
        self.server = Host(self.network, "server")
        self.network.connect_bidirectional(
            "client",
            "server",
            prop_delay=one_way,
            bandwidth_bps=10 * GIGABITS_PER_SECOND,
        )
        self.one_way = one_way

    def server_endpoint(self, port: int = 7000) -> Endpoint:
        return Endpoint("server", port)


@pytest.fixture
def pair(sim: Simulator) -> PairTopology:
    return PairTopology(sim)


def make_echo_server(pair: PairTopology, port: int = 7000, reply_size: int = 256):
    """Listen on the pair's server; echo every message back."""
    received = []

    def on_connection(conn):
        def on_message(c, message):
            received.append((pair.sim.now, message))
            c.send_message(("echo", message), reply_size)

        conn.on_message = on_message
        conn.on_peer_close = lambda c: c.close()

    pair.server.listen(port, on_connection)
    return received


@pytest.fixture
def transport_config() -> TransportConfig:
    return TransportConfig()
