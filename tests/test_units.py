"""Unit-conversion helpers."""

import pytest

from repro import units


class TestConversions:
    def test_constants_relate(self):
        assert units.SECONDS == 1000 * units.MILLISECONDS
        assert units.MILLISECONDS == 1000 * units.MICROSECONDS
        assert units.MICROSECONDS == 1000 * units.NANOSECONDS

    def test_seconds_round_trip(self):
        assert units.to_seconds(units.seconds(1.5)) == pytest.approx(1.5)

    def test_milliseconds(self):
        assert units.milliseconds(2.5) == 2_500_000

    def test_microseconds(self):
        assert units.microseconds(64) == 64_000

    def test_seconds_rounds_not_truncates(self):
        assert units.seconds(0.9999999999) == units.SECONDS

    def test_to_millis(self):
        assert units.to_millis(1_500_000) == pytest.approx(1.5)

    def test_to_micros(self):
        assert units.to_micros(2_500) == pytest.approx(2.5)


class TestSerializationDelay:
    def test_one_kb_at_one_gbps(self):
        # 1000 bytes = 8000 bits at 1e9 bps -> 8 us.
        assert units.serialization_delay(1000, 10**9) == 8_000

    def test_rounds_up(self):
        # 1 byte at 3 bps: 8/3 s = 2.67 s -> ceil.
        expect = -(-8 * units.SECONDS // 3)
        assert units.serialization_delay(1, 3) == expect

    def test_never_zero_for_positive_size(self):
        assert units.serialization_delay(1, 10**12) >= 1

    def test_zero_size_is_zero(self):
        assert units.serialization_delay(0, 10**9) == 0

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            units.serialization_delay(100, 0)
        with pytest.raises(ValueError):
            units.serialization_delay(100, -5)


class TestFormatNs:
    def test_seconds_range(self):
        assert units.format_ns(2 * units.SECONDS) == "2.000s"

    def test_millis_range(self):
        assert units.format_ns(int(1.5 * units.MILLISECONDS)) == "1.500ms"

    def test_micros_range(self):
        assert units.format_ns(64 * units.MICROSECONDS) == "64.0us"

    def test_nanos_range(self):
        assert units.format_ns(999) == "999ns"
