"""Quantile estimators: exact, windowed, and P²."""

import random

import pytest

from repro.telemetry.quantiles import P2Quantile, WindowedQuantile, exact_quantile


class TestExactQuantile:
    def test_median_odd(self):
        assert exact_quantile([3, 1, 2], 0.5) == 2

    def test_median_even_interpolates(self):
        assert exact_quantile([1, 2, 3, 4], 0.5) == 2.5

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert exact_quantile(data, 0.0) == 1
        assert exact_quantile(data, 1.0) == 9

    def test_single_element(self):
        assert exact_quantile([7], 0.37) == 7.0

    def test_p95_of_uniform_ramp(self):
        data = list(range(101))  # 0..100
        assert exact_quantile(data, 0.95) == pytest.approx(95.0)

    def test_does_not_mutate_input(self):
        data = [3, 1, 2]
        exact_quantile(data, 0.5)
        assert data == [3, 1, 2]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            exact_quantile([], 0.5)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            exact_quantile([1], 1.5)
        with pytest.raises(ValueError):
            exact_quantile([1], -0.1)


class TestWindowedQuantile:
    def test_empty_returns_none(self):
        assert WindowedQuantile(4).quantile(0.5) is None

    def test_matches_exact_within_window(self):
        wq = WindowedQuantile(100)
        data = [random.Random(1).uniform(0, 100) for _ in range(50)]
        for value in data:
            wq.observe(value)
        assert wq.quantile(0.9) == pytest.approx(exact_quantile(data, 0.9))

    def test_eviction_slides_window(self):
        wq = WindowedQuantile(3)
        for value in (1, 2, 3, 100, 100, 100):
            wq.observe(value)
        assert wq.quantile(0.5) == 100

    def test_len_tracks_window(self):
        wq = WindowedQuantile(3)
        for value in range(10):
            wq.observe(value)
        assert len(wq) == 3

    def test_duplicates_evict_correctly(self):
        wq = WindowedQuantile(2)
        wq.observe(5)
        wq.observe(5)
        wq.observe(7)
        assert len(wq) == 2
        assert wq.quantile(0.0) == 5
        assert wq.quantile(1.0) == 7

    def test_reset(self):
        wq = WindowedQuantile(4)
        wq.observe(1)
        wq.reset()
        assert len(wq) == 0
        assert wq.quantile(0.5) is None

    def test_window_validation(self):
        with pytest.raises(ValueError):
            WindowedQuantile(0)


class TestP2Quantile:
    def test_empty_returns_none(self):
        assert P2Quantile(0.5).value() is None

    def test_small_sample_exact(self):
        p2 = P2Quantile(0.5)
        for value in (10, 20, 30):
            p2.observe(value)
        assert p2.value() == 20

    def test_uniform_median_close(self):
        rng = random.Random(42)
        p2 = P2Quantile(0.5)
        data = [rng.uniform(0, 1000) for _ in range(5000)]
        for value in data:
            p2.observe(value)
        assert p2.value() == pytest.approx(exact_quantile(data, 0.5), rel=0.05)

    def test_p95_of_exponential_close(self):
        rng = random.Random(7)
        p2 = P2Quantile(0.95)
        data = [rng.expovariate(1.0) for _ in range(20000)]
        for value in data:
            p2.observe(value)
        assert p2.value() == pytest.approx(exact_quantile(data, 0.95), rel=0.1)

    def test_monotone_input(self):
        p2 = P2Quantile(0.5)
        for value in range(1, 1001):
            p2.observe(value)
        assert p2.value() == pytest.approx(500, rel=0.05)

    def test_q_validation(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_count(self):
        p2 = P2Quantile(0.9)
        for i in range(10):
            p2.observe(i)
        assert p2.count == 10
