"""Per-backend latency estimation."""

import pytest

from repro.core.estimator import BackendLatencyEstimator, EstimatorConfig
from repro.units import MICROSECONDS, MILLISECONDS


US = MICROSECONDS


class TestObservation:
    def test_unknown_backend_estimate_none(self):
        assert BackendLatencyEstimator().estimate("ghost") is None

    def test_single_sample_sets_estimate(self):
        est = BackendLatencyEstimator()
        est.observe("s0", now=0, t_lb=500 * US)
        assert est.estimate("s0") == 500 * US

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            BackendLatencyEstimator().observe("s0", 0, -1)

    def test_total_samples(self):
        est = BackendLatencyEstimator()
        for i in range(5):
            est.observe("s0", i, 100)
        assert est.total_samples == 5


class TestMetrics:
    def _loaded(self, metric):
        est = BackendLatencyEstimator(EstimatorConfig(metric=metric, min_samples=1))
        for i in range(20):
            value = 100 * US if i < 19 else 10 * MILLISECONDS  # one outlier
            est.observe("s0", now=i * MILLISECONDS, t_lb=value)
        return est

    def test_p95_sees_tail(self):
        est = self._loaded("p95")
        assert est.estimate("s0") > 100 * US

    def test_p50_robust_to_outlier(self):
        est = self._loaded("p50")
        assert est.estimate("s0") == pytest.approx(100 * US)

    def test_ewma_between(self):
        est = self._loaded("ewma")
        value = est.estimate("s0")
        assert 100 * US < value < 10 * MILLISECONDS

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            EstimatorConfig(metric="mode").validate()


class TestSnapshotAndRanking:
    def make(self, min_samples=3):
        return BackendLatencyEstimator(EstimatorConfig(min_samples=min_samples))

    def test_min_samples_gate(self):
        est = self.make(min_samples=3)
        est.observe("s0", 0, 100)
        est.observe("s0", 1, 100)
        assert est.snapshot() == []
        est.observe("s0", 2, 100)
        snap = est.snapshot()
        assert len(snap) == 1
        assert snap[0].backend == "s0"
        assert snap[0].samples == 3

    def test_worst_and_best(self):
        est = self.make(min_samples=1)
        for i in range(3):
            est.observe("slow", i, 900 * US)
            est.observe("fast", i, 100 * US)
        worst, best = est.worst_and_best()
        assert worst.backend == "slow"
        assert best.backend == "fast"

    def test_worst_and_best_needs_two(self):
        est = self.make(min_samples=1)
        est.observe("only", 0, 100)
        assert est.worst_and_best() is None

    def test_forget(self):
        est = self.make(min_samples=1)
        est.observe("s0", 0, 100)
        est.forget("s0")
        assert est.estimate("s0") is None

    def test_snapshot_sorted_by_name(self):
        est = self.make(min_samples=1)
        est.observe("zeta", 0, 100)
        est.observe("alpha", 0, 100)
        assert [e.backend for e in est.snapshot()] == ["alpha", "zeta"]


class TestTimeDecay:
    def test_stale_estimate_updates_quickly_after_change(self):
        config = EstimatorConfig(metric="ewma", tau=1 * MILLISECONDS, min_samples=1)
        est = BackendLatencyEstimator(config)
        est.observe("s0", now=0, t_lb=100 * US)
        # 10 tau later, one new sample dominates.
        est.observe("s0", now=10 * MILLISECONDS, t_lb=2 * MILLISECONDS)
        assert est.estimate("s0") == pytest.approx(2 * MILLISECONDS, rel=0.01)
