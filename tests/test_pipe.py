"""Pipe: delay, serialization, queueing, injection, ordering."""

import pytest

from repro.errors import NetworkError
from repro.net.addr import Endpoint
from repro.net.packet import HEADER_BYTES, Packet
from repro.net.pipe import Pipe
from repro.units import MICROSECONDS, serialization_delay


def make_packet(payload=0):
    return Packet(src=Endpoint("a", 1), dst=Endpoint("b", 2), payload_len=payload)


def connected_pipe(sim, **kwargs):
    pipe = Pipe(sim, "a->b", **kwargs)
    arrivals = []
    pipe.connect(lambda pkt: arrivals.append((sim.now, pkt)))
    return pipe, arrivals


class TestPropagation:
    def test_ideal_pipe_delivers_after_prop_delay(self, sim):
        pipe, arrivals = connected_pipe(sim, prop_delay=500, bandwidth_bps=None)
        pipe.send(make_packet())
        sim.run()
        assert [t for t, _ in arrivals] == [500]

    def test_send_without_receiver_rejected(self, sim):
        pipe = Pipe(sim, "x", prop_delay=0)
        with pytest.raises(NetworkError):
            pipe.send(make_packet())

    def test_negative_prop_delay_rejected(self, sim):
        with pytest.raises(NetworkError):
            Pipe(sim, "x", prop_delay=-1)


class TestSerialization:
    def test_serialization_adds_to_latency(self, sim):
        bw = 10**9
        pipe, arrivals = connected_pipe(sim, prop_delay=1000, bandwidth_bps=bw)
        pkt = make_packet(payload=934)  # 1000 bytes on the wire
        pipe.send(pkt)
        sim.run()
        expect = serialization_delay(pkt.size_bytes, bw) + 1000
        assert arrivals[0][0] == expect

    def test_back_to_back_packets_queue_on_wire(self, sim):
        bw = 10**9
        pipe, arrivals = connected_pipe(sim, prop_delay=0, bandwidth_bps=bw)
        pkt = make_packet(payload=934)
        ser = serialization_delay(pkt.size_bytes, bw)
        pipe.send(make_packet(payload=934))
        pipe.send(make_packet(payload=934))
        sim.run()
        times = [t for t, _ in arrivals]
        assert times == [ser, 2 * ser]

    def test_wire_idles_between_spaced_sends(self, sim):
        bw = 10**9
        pipe, arrivals = connected_pipe(sim, prop_delay=0, bandwidth_bps=bw)
        ser = serialization_delay(make_packet().size_bytes, bw)
        pipe.send(make_packet())
        sim.run()
        assert arrivals[0][0] == ser
        # A send long after the wire went idle serializes afresh from `now`.
        sim.schedule_at(10 * ser, lambda: pipe.send(make_packet()))
        sim.run()
        assert arrivals[1][0] == 11 * ser


class TestQueueing:
    def test_tail_drop_beyond_capacity(self, sim):
        pipe, arrivals = connected_pipe(
            sim, prop_delay=0, bandwidth_bps=1000, queue_capacity=2
        )
        results = [pipe.send(make_packet()) for _ in range(4)]
        assert results == [True, True, False, False]
        assert pipe.stats.packets_dropped == 2
        sim.run()
        assert len(arrivals) == 2

    def test_queue_drains_over_time(self, sim):
        pipe, arrivals = connected_pipe(
            sim, prop_delay=0, bandwidth_bps=10**9, queue_capacity=1
        )
        assert pipe.send(make_packet())
        assert not pipe.send(make_packet())  # full
        sim.run()
        assert pipe.send(make_packet())  # drained
        sim.run()
        assert len(arrivals) == 2

    def test_infinite_bandwidth_never_drops(self, sim):
        pipe, arrivals = connected_pipe(
            sim, prop_delay=10, bandwidth_bps=None, queue_capacity=1
        )
        for _ in range(100):
            assert pipe.send(make_packet())
        sim.run()
        assert len(arrivals) == 100

    def test_capacity_validation(self, sim):
        with pytest.raises(NetworkError):
            Pipe(sim, "x", prop_delay=0, queue_capacity=0)


class TestExtraDelay:
    def test_injection_applies_to_subsequent_packets(self, sim):
        pipe, arrivals = connected_pipe(sim, prop_delay=100, bandwidth_bps=None)
        pipe.send(make_packet())
        sim.run()
        pipe.set_extra_delay(1000)
        pipe.send(make_packet())
        sim.run()
        assert arrivals[0][0] == 100
        assert arrivals[1][0] - arrivals[0][0] == 1100

    def test_injection_clears(self, sim):
        pipe, arrivals = connected_pipe(sim, prop_delay=100, bandwidth_bps=None)
        pipe.set_extra_delay(1000)
        pipe.set_extra_delay(0)
        pipe.send(make_packet())
        sim.run()
        assert arrivals[0][0] == 100

    def test_negative_injection_rejected(self, sim):
        pipe, _ = connected_pipe(sim, prop_delay=0)
        with pytest.raises(NetworkError):
            pipe.set_extra_delay(-5)

    def test_extra_delay_property(self, sim):
        pipe, _ = connected_pipe(sim, prop_delay=0)
        pipe.set_extra_delay(123)
        assert pipe.extra_delay == 123


class TestJitterAndOrdering:
    def test_jitter_added(self, sim):
        pipe, arrivals = connected_pipe(
            sim, prop_delay=100, bandwidth_bps=None, jitter=lambda: 50
        )
        pipe.send(make_packet())
        sim.run()
        assert arrivals[0][0] == 150

    def test_jitter_never_reorders(self, sim):
        jitters = iter([10_000, 0])
        pipe, arrivals = connected_pipe(
            sim, prop_delay=100, bandwidth_bps=None, jitter=lambda: next(jitters)
        )
        pipe.send(make_packet())
        pipe.send(make_packet())
        sim.run()
        times = [t for t, _ in arrivals]
        # Second packet clamped to the first's (jittered) arrival.
        assert times[0] == 10_100
        assert times[1] == 10_100

    def test_negative_jitter_rejected(self, sim):
        pipe, _ = connected_pipe(
            sim, prop_delay=0, bandwidth_bps=None, jitter=lambda: -1
        )
        with pytest.raises(NetworkError):
            pipe.send(make_packet())
            sim.run()


class TestStats:
    def test_byte_and_packet_counters(self, sim):
        pipe, _ = connected_pipe(sim, prop_delay=0, bandwidth_bps=None)
        pkt = make_packet(payload=100)
        pipe.send(pkt)
        sim.run()
        assert pipe.stats.packets_sent == 1
        assert pipe.stats.packets_delivered == 1
        assert pipe.stats.bytes_sent == HEADER_BYTES + 100
        assert pipe.stats.bytes_delivered == HEADER_BYTES + 100


class TestDeliveryPump:
    """One outstanding engine event per pipe, byte-identical delivery."""

    def test_heap_holds_one_event_for_many_in_flight(self, sim):
        pipe, arrivals = connected_pipe(sim, prop_delay=1000, bandwidth_bps=None)
        for _ in range(100):
            pipe.send(make_packet())
        assert pipe.in_flight == 100
        assert sim.pending_events == 1  # the pump, not 100 deliveries
        sim.run()
        assert len(arrivals) == 100
        assert pipe.in_flight == 0

    def test_one_engine_event_per_delivered_packet(self, sim):
        """The pump re-arms per packet, so events_processed still counts
        one event per delivery (throughput metrics stay comparable)."""
        pipe, arrivals = connected_pipe(sim, prop_delay=1000, bandwidth_bps=None)
        for _ in range(10):
            pipe.send(make_packet())
        sim.run()
        assert sim.events_processed == 10

    def test_delivery_interleaves_with_other_events_in_send_order(self, sim):
        """Ties at the same instant keep the order the per-packet scheme
        would have produced: the pump re-arms with reserved seqs."""
        order = []
        pipe = Pipe(sim, "a->b", prop_delay=1000, bandwidth_bps=None)
        pipe.connect(lambda pkt: order.append("pkt"))
        pipe.send(make_packet())           # delivery seq reserved first
        sim.schedule_at(1000, lambda: order.append("timer1"))
        pipe.send(make_packet())           # second delivery, same instant
        sim.schedule_at(1000, lambda: order.append("timer2"))
        sim.run()
        assert order == ["pkt", "timer1", "pkt", "timer2"]

    def test_send_from_delivery_callback_keeps_pumping(self, sim):
        """A delivery that triggers another send on the same pipe re-arms
        the pump correctly even when the queue just drained."""
        pipe, arrivals = connected_pipe(sim, prop_delay=1000, bandwidth_bps=None)
        sent = []

        def deliver_and_resend(pkt):
            arrivals.append((sim.now, pkt))
            if len(sent) < 3:
                sent.append(pkt)
                pipe.send(make_packet())

        pipe.connect(deliver_and_resend)
        pipe.send(make_packet())
        sim.run()
        assert [t for t, _ in arrivals] == [1000, 2000, 3000, 4000]

    def test_pump_stats_count_deliveries(self, sim):
        pipe, _ = connected_pipe(sim, prop_delay=0, bandwidth_bps=None)
        for _ in range(5):
            pipe.send(make_packet(payload=10))
        sim.run()
        assert pipe.stats.packets_delivered == 5
        assert pipe.stats.bytes_delivered == 5 * (HEADER_BYTES + 10)
