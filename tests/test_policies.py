"""Routing policies."""

import random
from collections import Counter

import pytest

from repro.errors import BalancerError
from repro.lb.backend import Backend, BackendPool
from repro.lb.conntrack import ConnTrack
from repro.lb.policies import (
    LeastConnections,
    MaglevPolicy,
    PowerOfTwoChoices,
    RandomPolicy,
    RoundRobin,
    WeightedRandom,
)
from repro.net.addr import FlowKey


def flow(index):
    return FlowKey("client", 40_000 + index, "vip", 11211)


def make_pool(n=3):
    return BackendPool([Backend("s%d" % i) for i in range(n)])


class TestMaglevPolicy:
    def test_deterministic_per_flow(self):
        policy = MaglevPolicy(make_pool(), table_size=251)
        assert policy.select(flow(1), 0) == policy.select(flow(1), 100)

    def test_distributes_across_backends(self):
        policy = MaglevPolicy(make_pool(), table_size=251)
        counts = Counter(policy.select(flow(i), 0) for i in range(3000))
        for name in ("s0", "s1", "s2"):
            assert counts[name] == pytest.approx(1000, rel=0.2)

    def test_rebuilds_on_weight_change(self):
        pool = make_pool(2)
        policy = MaglevPolicy(pool, table_size=251)
        builds_before = policy.table.builds
        pool.set_weight("s0", 0.1)
        assert policy.table.builds == builds_before + 1
        counts = Counter(policy.select(flow(i), 0) for i in range(2000))
        assert counts["s1"] > counts["s0"] * 5

    def test_unhealthy_backend_dropped_from_table(self):
        pool = make_pool(2)
        policy = MaglevPolicy(pool, table_size=251)
        pool.set_healthy("s0", False)
        counts = Counter(policy.select(flow(i), 0) for i in range(100))
        assert set(counts) == {"s1"}

    def test_no_backends_raises(self):
        pool = make_pool(1)
        policy = MaglevPolicy(pool, table_size=251)
        pool.set_healthy("s0", False)
        with pytest.raises(BalancerError):
            policy.select(flow(0), 0)


class TestRoundRobin:
    def test_cycles(self):
        policy = RoundRobin(make_pool(3))
        picks = [policy.select(flow(i), 0) for i in range(6)]
        assert picks == ["s0", "s1", "s2", "s0", "s1", "s2"]

    def test_skips_unhealthy(self):
        pool = make_pool(3)
        pool.set_healthy("s1", False)
        policy = RoundRobin(pool)
        picks = {policy.select(flow(i), 0) for i in range(4)}
        assert picks == {"s0", "s2"}


class TestRandomPolicies:
    def test_uniform_random_covers_all(self):
        policy = RandomPolicy(make_pool(3), random.Random(1))
        counts = Counter(policy.select(flow(i), 0) for i in range(3000))
        for name in ("s0", "s1", "s2"):
            assert counts[name] == pytest.approx(1000, rel=0.2)

    def test_weighted_random_follows_weights(self):
        pool = make_pool(2)
        pool.set_weight("s0", 3.0)
        policy = WeightedRandom(pool, random.Random(2))
        counts = Counter(policy.select(flow(i), 0) for i in range(4000))
        assert counts["s0"] == pytest.approx(3000, rel=0.1)

    def test_weighted_random_zero_total_falls_back(self):
        pool = make_pool(2)
        # healthy() filters weight 0, so give tiny weights instead.
        pool.set_weights({"s0": 1e-12, "s1": 1e-12})
        policy = WeightedRandom(pool, random.Random(3))
        assert policy.select(flow(0), 0) in ("s0", "s1")


class TestLeastConnections:
    def test_prefers_emptier_backend(self):
        pool = make_pool(2)
        track = ConnTrack()
        for i in range(5):
            track.insert(flow(i), "s0", now=0)
        policy = LeastConnections(pool, track)
        assert policy.select(flow(100), 0) == "s1"

    def test_tie_broken_by_name(self):
        policy = LeastConnections(make_pool(2), ConnTrack())
        assert policy.select(flow(0), 0) == "s0"


class TestPowerOfTwoChoices:
    def test_single_backend_shortcut(self):
        policy = PowerOfTwoChoices(make_pool(1), ConnTrack(), random.Random(1))
        assert policy.select(flow(0), 0) == "s0"

    def test_prefers_lower_latency_with_source(self):
        latencies = {"s0": 100.0, "s1": 5000.0, "s2": 5000.0}
        policy = PowerOfTwoChoices(
            make_pool(3),
            ConnTrack(),
            random.Random(2),
            latency_source=latencies.get,
        )
        counts = Counter(policy.select(flow(i), 0) for i in range(300))
        # s0 wins every sample that includes it (~2/3 of draws).
        assert counts["s0"] > counts["s1"]
        assert counts["s0"] > counts["s2"]

    def test_falls_back_to_conn_counts_without_estimates(self):
        pool = make_pool(2)
        track = ConnTrack()
        for i in range(10):
            track.insert(flow(i), "s0", now=0)
        policy = PowerOfTwoChoices(
            pool, track, random.Random(3), latency_source=lambda name: None
        )
        counts = Counter(policy.select(flow(100 + i), 0) for i in range(100))
        assert counts["s1"] == 100  # always the emptier of the two
