"""The controller registry: names, factories, feedback-plane dispatch."""

import pytest

import repro.controllers as controllers
from repro.controllers import (
    Controller,
    GradientDescentController,
    KnapsackController,
    MorpheusController,
)
from repro.controllers.registry import ControllerSpec, get_spec, register
from repro.core.controller import AlphaShiftController
from repro.core.estimator import BackendLatencyEstimator, EstimatorConfig
from repro.core.feedback import FeedbackConfig
from repro.errors import ConfigError
from repro.lb.backend import Backend, BackendPool


def make_pool(n=3):
    return BackendPool([Backend("s%d" % i) for i in range(n)])


def make_estimator():
    return BackendLatencyEstimator(EstimatorConfig(min_samples=1))


class TestRegistry:
    def test_full_roster_registered(self):
        assert controllers.available() == [
            "aimd",
            "alpha",
            "gradient",
            "knapsack",
            "morpheus",
            "proportional",
        ]

    def test_specs_carry_provenance(self):
        for spec in controllers.specs():
            assert isinstance(spec, ControllerSpec)
            assert spec.summary, "%s needs a summary" % spec.name
            assert spec.provenance, "%s needs provenance" % spec.name

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ConfigError) as excinfo:
            get_spec("nonsense")
        message = str(excinfo.value)
        assert "nonsense" in message
        for name in controllers.available():
            assert name in message

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError):
            register("alpha")(lambda pool, estimator, config: None)

    def test_create_builds_each_law(self):
        expected = {
            "alpha": AlphaShiftController,
            "knapsack": KnapsackController,
            "gradient": GradientDescentController,
            "morpheus": MorpheusController,
        }
        for name, cls in expected.items():
            controller = controllers.create(
                name, make_pool(), make_estimator(), FeedbackConfig()
            )
            assert isinstance(controller, cls)

    def test_every_law_satisfies_the_protocol(self):
        for name in controllers.available():
            controller = controllers.create(
                name, make_pool(), make_estimator(), FeedbackConfig()
            )
            assert isinstance(controller, Controller), name
            assert controller.updates == []
            assert controller.stale_holds == 0
            assert controller.maybe_update(0) is None  # no estimates yet


class TestFeedbackDispatch:
    def build_feedback(self, sim, strategy):
        from repro.core.feedback import InbandFeedback
        from repro.lb.dataplane import LoadBalancer
        from repro.lb.policies import MaglevPolicy
        from repro.net.addr import Endpoint
        from repro.net.network import Network

        network = Network(sim)
        pool = make_pool()
        lb = LoadBalancer(
            network, "lb", Endpoint("vip", 80), pool, MaglevPolicy(pool, 251)
        )
        return InbandFeedback(lb, FeedbackConfig(strategy=strategy))

    def test_new_laws_constructible_from_config(self, sim):
        for strategy, cls in (
            ("knapsack", KnapsackController),
            ("gradient", GradientDescentController),
            ("morpheus", MorpheusController),
        ):
            feedback = self.build_feedback(sim, strategy)
            assert isinstance(feedback.controller, cls)

    def test_unknown_strategy_message_lists_names(self, sim):
        with pytest.raises(ConfigError) as excinfo:
            self.build_feedback(sim, "typo")
        assert "knapsack" in str(excinfo.value)
