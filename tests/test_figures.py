"""Paper experiments at reduced scale (full scale runs in benchmarks/)."""

import pytest

from repro.harness.config import PolicyName
from repro.harness.figures import (
    BacklogConfig,
    Fig3Config,
    build_backlog,
    run_error_decomposition,
    run_fig2a,
    run_fig2b,
    run_fig3,
    run_reaction,
)
from repro.units import MICROSECONDS, MILLISECONDS, SECONDS


SMALL_BACKLOG = BacklogConfig(
    duration=800 * MILLISECONDS, step_at=400 * MILLISECONDS
)


@pytest.fixture(scope="module")
def fig2a():
    return run_fig2a(SMALL_BACKLOG)


@pytest.fixture(scope="module")
def fig2b():
    return run_fig2b(SMALL_BACKLOG)


class TestBacklogScenario:
    def test_ground_truth_tracks_step(self, fig2a):
        truth_pre = fig2a.median_ground_truth(False)
        truth_post = fig2a.median_ground_truth(True)
        assert truth_post > truth_pre + 500 * MICROSECONDS

    def test_build_backlog_wiring(self):
        run = build_backlog(SMALL_BACKLOG)
        assert run.lb.pool.names() == ["server0"]
        run.sim.run_until(20 * MILLISECONDS)
        assert run.client.conn.established


class TestFig2a:
    """Fig 2(a) shape: low δ floods low samples; high δ gives few, high."""

    def test_low_delta_many_samples(self, fig2a):
        low = 64 * MICROSECONDS
        pre, post = fig2a.sample_counts[low]
        assert pre + post > 500

    def test_low_delta_underestimates_after_step(self, fig2a):
        low = 64 * MICROSECONDS
        est = fig2a.median_estimate(low, after_step=True)
        truth = fig2a.median_ground_truth(after_step=True)
        assert est < truth / 2

    def test_high_delta_few_samples(self, fig2a):
        low = 64 * MICROSECONDS
        high = 1024 * MICROSECONDS
        low_total = sum(fig2a.sample_counts[low])
        high_total = sum(fig2a.sample_counts[high])
        assert high_total < low_total / 10

    def test_high_delta_overestimates(self, fig2a):
        high = 1024 * MICROSECONDS
        est_pre = fig2a.median_estimate(high, after_step=False)
        truth_pre = fig2a.median_ground_truth(after_step=False)
        if est_pre is not None:  # rare spikes may not occur pre-step
            assert est_pre > 2 * truth_pre


class TestFig2b:
    """Fig 2(b): the ensemble tracks the truth through the step."""

    SETTLE = 150 * MILLISECONDS  # a couple of epochs to find the new cliff

    def _median(self, series, lo, hi):
        values = [v for t, v in series.items() if lo <= t < hi]
        if not values:
            return None
        return sorted(values)[len(values) // 2]

    def test_tracks_before_step(self, fig2b):
        assert fig2b.tracking_error(False) < 0.25

    def test_tracks_after_step_once_settled(self, fig2b):
        lo = SMALL_BACKLOG.step_at + self.SETTLE
        hi = SMALL_BACKLOG.duration
        est = self._median(fig2b.estimates, lo, hi)
        truth = self._median(fig2b.ground_truth, lo, hi)
        assert est is not None and truth is not None
        assert est == pytest.approx(truth, rel=0.3)

    def test_chosen_timeout_grows_after_step(self, fig2b):
        pre = [v for t, v in fig2b.chosen_timeouts.items()
               if t < SMALL_BACKLOG.step_at]
        post = [v for t, v in fig2b.chosen_timeouts.items()
                if t > SMALL_BACKLOG.step_at + self.SETTLE]
        assert pre and post
        median_pre = sorted(pre)[len(pre) // 2]
        median_post = sorted(post)[len(post) // 2]
        assert median_post > median_pre

    def test_epochs_completed(self, fig2b):
        # 800 ms at E=64 ms: at least 10 epochs.
        assert fig2b.epochs >= 10


class TestFig3:
    @pytest.fixture(scope="class")
    def fig3(self):
        return run_fig3(Fig3Config(duration=1600 * MILLISECONDS))

    def test_maglev_p95_inflates(self, fig3):
        pre = fig3.steady_state_p95("maglev")
        post = fig3.post_injection_p95("maglev", settle=200 * MILLISECONDS)
        assert post > pre + 300 * MICROSECONDS

    def test_feedback_p95_recovers(self, fig3):
        config = fig3.config
        pre = fig3.steady_state_p95("feedback")
        post = fig3.post_injection_p95("feedback", settle=config.duration // 4)
        # Within 25% of its own steady state (vs ~+1ms for maglev).
        assert post < pre * 1.25 + 100 * MICROSECONDS

    def test_feedback_beats_maglev_after_injection(self, fig3):
        settle = 200 * MILLISECONDS
        assert fig3.post_injection_p95("feedback", settle) < fig3.post_injection_p95(
            "maglev", settle
        )

    def test_traffic_shifted_off_injected_server(self, fig3):
        result = fig3.results["feedback"]
        injected = fig3.config.injected_server
        post = [
            r
            for r in result.records
            if r.completed_at > fig3.config.injection_at + 400 * MILLISECONDS
        ]
        share = sum(1 for r in post if r.server == injected) / len(post)
        assert share < 0.25

    def test_p95_series_nonempty(self, fig3):
        for policy in ("maglev", "feedback"):
            assert len(fig3.p95_series(policy)) >= 4


class TestReaction:
    def test_reacts_within_tens_of_milliseconds(self):
        result = run_reaction(Fig3Config(duration=1200 * MILLISECONDS))
        assert result.reaction_ns is not None
        assert result.reaction_ns < 100 * MILLISECONDS
        assert result.shifts_total > 0

    def test_injected_server_reaches_floor(self):
        result = run_reaction(Fig3Config(duration=1600 * MILLISECONDS))
        assert result.injected_weight_floor_at is not None
        assert result.injected_weight_floor_at >= result.injection_at


class TestErrorDecomposition:
    def test_identity_holds_without_think_time(self):
        result = run_error_decomposition(0, duration=400 * MILLISECONDS)
        assert result.identity_gap < 20 * MICROSECONDS

    def test_identity_holds_with_think_time(self):
        think = 300 * MICROSECONDS
        result = run_error_decomposition(think, duration=400 * MILLISECONDS)
        assert result.measured_error == pytest.approx(think, abs=30 * MICROSECONDS)

    def test_t_trigger_dominates_error(self):
        """Paper §3: T_trigger is the bulk of the T_LB error."""
        small = run_error_decomposition(0, duration=400 * MILLISECONDS)
        large = run_error_decomposition(
            500 * MICROSECONDS, duration=400 * MILLISECONDS
        )
        assert abs(large.measured_error) > 10 * abs(small.measured_error)
