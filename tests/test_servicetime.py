"""Service-time distributions."""

import random

import pytest

from repro.app.protocol import Op, Request
from repro.app.servicetime import Bimodal, Deterministic, Exponential, LogNormal, PerOp
from repro.units import MICROSECONDS


GET = Request(op=Op.GET, key="k")
SET = Request(op=Op.SET, key="k", value_size=100)


class TestDeterministic:
    def test_constant(self):
        model = Deterministic(50 * MICROSECONDS)
        rng = random.Random(0)
        assert model.sample(rng, GET) == 50 * MICROSECONDS
        assert model.sample(rng, SET) == 50 * MICROSECONDS

    def test_validation(self):
        with pytest.raises(ValueError):
            Deterministic(-1)


class TestExponential:
    def test_mean_close(self):
        model = Exponential(100 * MICROSECONDS)
        rng = random.Random(1)
        samples = [model.sample(rng, GET) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(
            100 * MICROSECONDS, rel=0.05
        )

    def test_non_negative(self):
        model = Exponential(10)
        rng = random.Random(2)
        assert all(model.sample(rng, GET) >= 0 for _ in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            Exponential(0)


class TestLogNormal:
    def test_median_close(self):
        model = LogNormal(median_ns=100 * MICROSECONDS, sigma=0.5)
        rng = random.Random(3)
        samples = sorted(model.sample(rng, GET) for _ in range(10001))
        assert samples[5000] == pytest.approx(100 * MICROSECONDS, rel=0.1)

    def test_right_tail_heavier_than_median(self):
        model = LogNormal(median_ns=100, sigma=1.0)
        rng = random.Random(4)
        samples = sorted(model.sample(rng, GET) for _ in range(10000))
        p99 = samples[9900]
        assert p99 > 5 * samples[5000]

    def test_validation(self):
        with pytest.raises(ValueError):
            LogNormal(0)
        with pytest.raises(ValueError):
            LogNormal(100, sigma=0)


class TestBimodal:
    def test_modes_only(self):
        model = Bimodal(fast_ns=10, slow_ns=1000, slow_prob=0.5)
        rng = random.Random(5)
        values = {model.sample(rng, GET) for _ in range(100)}
        assert values == {10, 1000}

    def test_slow_fraction(self):
        model = Bimodal(fast_ns=0, slow_ns=1, slow_prob=0.25)
        rng = random.Random(6)
        slow = sum(model.sample(rng, GET) for _ in range(40000))
        assert slow / 40000 == pytest.approx(0.25, rel=0.1)

    def test_degenerate_probabilities(self):
        rng = random.Random(7)
        assert Bimodal(1, 2, 0.0).sample(rng, GET) == 1
        assert Bimodal(1, 2, 1.0).sample(rng, GET) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Bimodal(1, 2, 1.5)
        with pytest.raises(ValueError):
            Bimodal(-1, 2, 0.5)


class TestPerOp:
    def test_routes_by_operation(self):
        model = PerOp(get_model=Deterministic(10), set_model=Deterministic(99))
        rng = random.Random(8)
        assert model.sample(rng, GET) == 10
        assert model.sample(rng, SET) == 99
