"""The insight plane wired into real scenarios: passivity and capture."""

import pytest

from repro.faults import DelayFault
from repro.fleet import FleetConfig, ScheduledAction
from repro.harness.config import PolicyName, ScenarioConfig
from repro.harness.runner import run_scenario
from repro.insight import InsightConfig, SLOConfig, loads
from repro.resilience import ResilienceConfig
from repro.units import MILLISECONDS


def run(insight=None, policy=PolicyName.FEEDBACK, **overrides):
    config = ScenarioConfig(
        seed=9,
        duration=120 * MILLISECONDS,
        policy=policy,
        insight=insight or InsightConfig(),
        faults=[DelayFault(start=60 * MILLISECONDS, node="server0", extra=MILLISECONDS)],
        **overrides,
    )
    return run_scenario(config)


def record_key(record):
    # request_id is a process-global counter, not simulation state.
    return (
        record.sent_at,
        record.completed_at,
        record.latency,
        record.server,
        record.op,
        record.local_port,
    )


class TestByteIdentity:
    def test_enabled_plane_changes_nothing(self):
        off = run()
        on = run(InsightConfig(enabled=True))
        assert [record_key(r) for r in off.records] == [
            record_key(r) for r in on.records
        ]
        assert [e.time for e in off.scenario.feedback.shift_events()] == [
            e.time for e in on.scenario.feedback.shift_events()
        ]
        assert off.wall_events == on.wall_events

    def test_identical_under_full_arming(self):
        kwargs = dict(
            resilience=ResilienceConfig(enabled=True, health_checks=True)
        )
        off = run(**kwargs)
        on = run(InsightConfig(enabled=True), **kwargs)
        assert [record_key(r) for r in off.records] == [
            record_key(r) for r in on.records
        ]
        assert off.wall_events == on.wall_events

    def test_disabled_plane_is_structurally_absent(self):
        result = run()
        assert result.scenario.insight is None
        assert result.timeline() is None


class TestFrameCapture:
    def test_frames_paced_and_bounded(self):
        result = run(InsightConfig(enabled=True, frame_interval=10 * MILLISECONDS))
        timeline = result.timeline()
        times = [f.time for f in timeline.frames]
        assert times == sorted(times)
        # ~1 frame per interval plus the closing frame.
        assert 5 <= len(times) <= 14
        assert times[-1] == result.config.duration  # finalize() frame
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g >= 10 * MILLISECONDS for g in gaps[:-1])

    def test_ring_bound_drops_and_counts(self):
        result = run(
            InsightConfig(
                enabled=True, frame_interval=MILLISECONDS, max_frames=4
            )
        )
        timeline = result.timeline()
        assert len(timeline) == 4
        assert timeline.dropped > 0

    def test_frames_carry_controller_state(self):
        result = run(InsightConfig(enabled=True))
        final = result.timeline().frames[-1]
        assert set(final.weights) == {"server0", "server1"}
        assert final.estimates  # the estimator saw samples
        assert final.samples["server0"] > 0
        assert final.sample_total == result.scenario.feedback.sample_count
        assert final.flows  # conntrack counted flows
        # Post-fault frame sees the active delay window.
        assert any(f.faults for f in result.timeline().frames)
        assert final.slo is not None and final.slo["observed"] > 0

    def test_resilience_state_recorded_when_armed(self):
        result = run(
            InsightConfig(enabled=True),
            resilience=ResilienceConfig(enabled=True, health_checks=True),
        )
        final = result.timeline().frames[-1]
        assert final.ladder_mode is not None
        assert final.grades.get("server0") in ("fresh", "stale", "invalid")

    def test_fleet_lifecycle_recorded_when_armed(self):
        result = run(
            InsightConfig(enabled=True),
            n_servers=2,
            maglev_size=1021,
            fleet=FleetConfig(
                enabled=True,
                max_backends=4,
                min_in_service=2,
                schedule=[ScheduledAction(at=40 * MILLISECONDS, desired=4)],
            ),
        )
        timeline = result.timeline()
        final = timeline.frames[-1]
        assert final.lifecycle  # per-backend fleet states captured
        assert timeline.annotations_between(
            0, result.config.duration, kind="scale"
        )

    def test_shift_annotations_match_controller(self):
        result = run(InsightConfig(enabled=True))
        shifts = result.scenario.feedback.shift_events()
        noted = result.timeline().annotations_between(
            0, result.config.duration, kind="shift"
        )
        assert len(noted) == len(shifts)
        assert [a.time for a in noted] == [s.time for s in shifts]

    def test_maglev_arm_records_weights_only(self):
        result = run(InsightConfig(enabled=True), policy=PolicyName.MAGLEV)
        final = result.timeline().frames[-1]
        assert final.weights  # pool state still visible
        assert final.estimates == {}  # no feedback plane to read


class TestSLOIntegration:
    def test_tight_slo_fires_and_annotates(self):
        result = run(
            InsightConfig(
                enabled=True,
                slo=SLOConfig(
                    target=200_000,  # 200us: the delay fault breaks this
                    goal=0.95,
                    short_window=20 * MILLISECONDS,
                    long_window=50 * MILLISECONDS,
                    burn_threshold=1.5,
                    cooldown=20 * MILLISECONDS,
                ),
            )
        )
        alerts = result.timeline().alerts()
        assert alerts
        assert result.scenario.insight.slo.alerts
        assert "SLO burn-rate alert" in alerts[0].label

    def test_report_carries_insight_summary(self):
        result = run(InsightConfig(enabled=True))
        text = result.report()
        assert "insight:" in text
        assert "frames recorded" in text


class TestArtifact:
    def test_dumps_round_trips_through_loads(self):
        result = run(InsightConfig(enabled=True))
        text = result.scenario.insight.dumps()
        loaded = loads(text)
        assert len(loaded) == len(result.timeline())
        assert loaded.meta["policy"] == "feedback"
        assert loaded.meta["seed"] == 9

    def test_export_writes_jsonl(self, tmp_path):
        result = run(InsightConfig(enabled=True))
        path = str(tmp_path / "timeline.jsonl")
        result.scenario.insight.export(path)
        with open(path, "r", encoding="utf-8") as handle:
            first = handle.readline()
        assert '"kind": "meta"' in first


class TestConfigValidation:
    def test_bad_insight_config_rejected_at_scenario_validate(self):
        from repro.errors import ConfigError

        config = ScenarioConfig(
            duration=50 * MILLISECONDS,
            insight=InsightConfig(enabled=True, frame_interval=0),
        )
        with pytest.raises(ConfigError):
            config.validate()
