"""memcached-like protocol messages."""

import pytest

from repro.app.protocol import (
    MISS_RESPONSE_SIZE,
    REQUEST_OVERHEAD,
    RESPONSE_OVERHEAD,
    STORED_RESPONSE_SIZE,
    Op,
    Request,
    Response,
)
from repro.errors import ProtocolError


class TestRequest:
    def test_get_wire_size(self):
        req = Request(op=Op.GET, key="abc")
        assert req.wire_size == REQUEST_OVERHEAD + 3

    def test_set_wire_size_includes_value(self):
        req = Request(op=Op.SET, key="abc", value_size=1000)
        assert req.wire_size == REQUEST_OVERHEAD + 3 + 1000

    def test_request_ids_unique_and_increasing(self):
        a = Request(op=Op.GET, key="k")
        b = Request(op=Op.GET, key="k")
        assert b.request_id > a.request_id

    def test_empty_key_rejected(self):
        with pytest.raises(ProtocolError):
            Request(op=Op.GET, key="")

    def test_set_requires_value(self):
        with pytest.raises(ProtocolError):
            Request(op=Op.SET, key="k")

    def test_get_carries_no_value(self):
        with pytest.raises(ProtocolError):
            Request(op=Op.GET, key="k", value_size=10)


class TestResponse:
    def test_get_hit_size(self):
        resp = Response(request_id=1, op=Op.GET, hit=True, value_size=500)
        assert resp.wire_size == RESPONSE_OVERHEAD + 500

    def test_get_miss_size(self):
        resp = Response(request_id=1, op=Op.GET, hit=False)
        assert resp.wire_size == MISS_RESPONSE_SIZE

    def test_set_ack_size(self):
        resp = Response(request_id=1, op=Op.SET, hit=True)
        assert resp.wire_size == STORED_RESPONSE_SIZE

    def test_server_attribution_field(self):
        resp = Response(request_id=1, op=Op.GET, hit=True, server="server3")
        assert resp.server == "server3"
