"""TCP-like connection: handshake, data, windows, close, loss recovery."""

import pytest

from repro.errors import TransportError
from repro.net.addr import Endpoint
from repro.net.network import Network
from repro.net.packet import TcpFlags
from repro.sim.engine import Simulator
from repro.transport.ack_policy import DelayedAck
from repro.transport.connection import ConnectionState, TransportConfig
from repro.transport.endpoint import Host
from repro.units import GIGABITS_PER_SECOND, MICROSECONDS, MILLISECONDS, SECONDS

from tests.conftest import PairTopology, make_echo_server

ONE_WAY = 100 * MICROSECONDS


def run_pair(sim, duration=1 * SECONDS):
    sim.run_until(duration)


class TestHandshake:
    def test_establishes_in_one_rtt(self, sim, pair):
        make_echo_server(pair)
        established = []
        conn = pair.client.connect(pair.server_endpoint())
        conn.on_established = lambda c: established.append(sim.now)
        run_pair(sim)
        # SYN (1 way) + SYN-ACK (1 way) ≈ RTT plus serialization.
        assert len(established) == 1
        assert established[0] == pytest.approx(2 * ONE_WAY, rel=0.05)
        assert conn.established

    def test_server_side_established_on_final_ack(self, sim, pair):
        server_conns = []

        def on_connection(conn):
            conn.on_established = lambda c: server_conns.append(sim.now)

        pair.server.listen(7000, on_connection)
        pair.client.connect(pair.server_endpoint())
        run_pair(sim)
        assert len(server_conns) == 1
        # SYN + SYN-ACK + ACK: one and a half RTTs from the client's view.
        assert server_conns[0] == pytest.approx(3 * ONE_WAY, rel=0.05)

    def test_open_twice_rejected(self, sim, pair):
        make_echo_server(pair)
        conn = pair.client.connect(pair.server_endpoint())
        with pytest.raises(TransportError):
            conn.open()

    def test_data_queued_before_establishment_flows(self, sim, pair):
        received = make_echo_server(pair)
        conn = pair.client.connect(pair.server_endpoint())
        conn.send_message("early", 100)  # handshake hasn't finished
        run_pair(sim)
        assert [m for _t, m in received] == ["early"]

    def test_syn_retransmitted_if_lost(self, sim):
        # Server attached only after the first SYN would have died on a
        # full queue: emulate loss with a 1-capacity pipe jammed by a
        # filler packet is brittle; instead drop via tiny queue and very
        # slow first link... simpler: connect with no listener and check
        # SYN retransmission counter grows.
        network = Network(sim)
        client = Host(network, "client")
        server = Host(network, "server")
        network.connect_bidirectional("client", "server", prop_delay=1000)
        conn = client.connect(
            Endpoint("server", 7000),
            TransportConfig(initial_rto=10 * MILLISECONDS),
        )
        sim.run_until(35 * MILLISECONDS)
        # No listener: SYN never answered; 10ms, 20ms backoff -> >= 2 resends.
        assert conn.stats.segments_sent >= 3
        assert conn.state is ConnectionState.SYN_SENT


class TestDataTransfer:
    def test_small_message_round_trip(self, sim, pair):
        make_echo_server(pair)
        replies = []
        conn = pair.client.connect(pair.server_endpoint())
        conn.on_message = lambda c, m: replies.append(m)
        conn.send_message("ping", 64)
        run_pair(sim)
        assert replies == [("echo", "ping")]

    def test_many_messages_in_order(self, sim, pair):
        received = make_echo_server(pair)
        conn = pair.client.connect(pair.server_endpoint())
        for i in range(50):
            conn.send_message(i, 100)
        run_pair(sim)
        assert [m for _t, m in received] == list(range(50))

    def test_large_message_spans_segments(self, sim, pair):
        received = make_echo_server(pair)
        conn = pair.client.connect(pair.server_endpoint())
        conn.send_message("big", 10_000)  # ~7 segments at MSS 1448
        run_pair(sim)
        assert [m for _t, m in received] == ["big"]
        assert conn.stats.segments_sent > 7  # SYN + data segments

    def test_message_sizes_validated(self, sim, pair):
        make_echo_server(pair)
        conn = pair.client.connect(pair.server_endpoint())
        with pytest.raises(TransportError):
            conn.send_message("x", 0)

    def test_interleaved_sizes_all_delivered(self, sim, pair):
        received = make_echo_server(pair, reply_size=16)
        conn = pair.client.connect(pair.server_endpoint())
        sizes = [1, 5000, 3, 1448, 2897, 10]
        for index, size in enumerate(sizes):
            conn.send_message(index, size)
        run_pair(sim)
        assert [m for _t, m in received] == list(range(len(sizes)))

    def test_bytes_accounting(self, sim, pair):
        received = make_echo_server(pair)
        conn = pair.client.connect(pair.server_endpoint())
        conn.send_message("a", 500)
        run_pair(sim)
        assert conn.stats.bytes_sent == 500
        assert conn.stats.messages_sent == 1


class TestFlowControl:
    def test_window_limits_inflight_bytes(self, sim, pair):
        make_echo_server(pair)
        config = TransportConfig(window=4096, mss=1024)
        conn = pair.client.connect(pair.server_endpoint(), config)
        conn.send_message("bulk", 100_000)
        # Run just past establishment + first burst; no ACKs yet.
        sim.run_until(2 * ONE_WAY + 20 * MICROSECONDS)
        assert 0 < conn.bytes_in_flight <= 4096

    def test_backlogged_sender_transmits_in_rtt_bursts(self, sim, pair):
        """The paper's core timing assumption: window bursts per RTT."""
        make_echo_server(pair)
        config = TransportConfig(window=4096, mss=1024)
        conn = pair.client.connect(pair.server_endpoint(), config)
        conn.send_message("bulk", 200_000)
        run_pair(sim, duration=20 * 2 * ONE_WAY)
        # Roughly window/RTT throughput: delivered ≈ 4096 * elapsed/RTT.
        rtt = 2 * ONE_WAY
        expected = 4096 * 20
        assert conn.stats.bytes_sent == pytest.approx(expected, rel=0.3)

    def test_window_opens_on_ack(self, sim, pair):
        make_echo_server(pair)
        config = TransportConfig(window=2048, mss=1024)
        conn = pair.client.connect(pair.server_endpoint(), config)
        conn.send_message("bulk", 8192)
        run_pair(sim)
        assert conn.bytes_in_flight == 0
        assert conn.unsent_bytes == 0

    def test_config_window_below_mss_rejected(self):
        with pytest.raises(TransportError):
            TransportConfig(window=100, mss=1448).validate()


class TestClose:
    def test_graceful_close_both_sides(self, sim, pair):
        make_echo_server(pair)
        closed = []
        conn = pair.client.connect(pair.server_endpoint())
        conn.on_closed = lambda c: closed.append(sim.now)
        run_pair(sim, duration=10 * MILLISECONDS)
        conn.close()
        run_pair(sim, duration=20 * MILLISECONDS)
        assert len(closed) == 1
        assert pair.client.connection_count == 0
        assert pair.server.connection_count == 0

    def test_close_flushes_pending_data_first(self, sim, pair):
        received = make_echo_server(pair)
        conn = pair.client.connect(pair.server_endpoint())
        conn.send_message("final", 5000)
        conn.close()
        run_pair(sim)
        assert [m for _t, m in received] == ["final"]
        assert conn.state is ConnectionState.CLOSED

    def test_send_after_close_rejected(self, sim, pair):
        make_echo_server(pair)
        conn = pair.client.connect(pair.server_endpoint())
        conn.close()
        with pytest.raises(TransportError):
            conn.send_message("late", 10)

    def test_close_idempotent(self, sim, pair):
        make_echo_server(pair)
        conn = pair.client.connect(pair.server_endpoint())
        conn.close()
        conn.close()
        run_pair(sim)
        assert conn.state is ConnectionState.CLOSED

    def test_abort_sends_rst_and_tears_down(self, sim, pair):
        server_conns = []
        pair.server.listen(7000, lambda c: server_conns.append(c))
        conn = pair.client.connect(pair.server_endpoint())
        run_pair(sim, duration=5 * MILLISECONDS)
        conn.abort()
        run_pair(sim, duration=10 * MILLISECONDS)
        assert conn.state is ConnectionState.CLOSED
        assert server_conns[0].state is ConnectionState.CLOSED
        assert pair.client.connection_count == 0

    def test_peer_close_callback_fires(self, sim, pair):
        peer_closed = []

        def on_connection(server_conn):
            server_conn.on_peer_close = lambda c: peer_closed.append(sim.now)

        pair.server.listen(7000, on_connection)
        conn = pair.client.connect(pair.server_endpoint())
        run_pair(sim, duration=5 * MILLISECONDS)
        conn.close()
        run_pair(sim, duration=10 * MILLISECONDS)
        assert len(peer_closed) == 1


class TestLossRecovery:
    def _lossy_pair(self, sim, capacity=4):
        network = Network(sim)
        client = Host(network, "client")
        server = Host(network, "server")
        # Tiny queue at modest bandwidth: bursts overflow and drop.
        network.connect(
            "client",
            "server",
            prop_delay=ONE_WAY,
            bandwidth_bps=100_000_000,
            queue_capacity=capacity,
        )
        network.connect("server", "client", prop_delay=ONE_WAY)
        return network, client, server

    def test_drops_recovered_by_retransmission(self, sim):
        network, client, server = self._lossy_pair(sim)
        received = []

        def on_connection(conn):
            conn.on_message = lambda c, m: received.append(m)

        server.listen(7000, on_connection)
        config = TransportConfig(
            window=32 * 1024, mss=1024, initial_rto=20 * MILLISECONDS
        )
        conn = client.connect(Endpoint("server", 7000), config)
        for i in range(30):
            conn.send_message(i, 1024)
        sim.run_until(2 * SECONDS)
        assert network.pipe("client", "server").stats.packets_dropped > 0
        assert received == list(range(30))
        assert conn.stats.retransmissions > 0

    def test_rtt_estimator_ignores_retransmits(self, sim):
        network, client, server = self._lossy_pair(sim)
        server.listen(7000, lambda conn: None)
        samples = []
        config = TransportConfig(window=32 * 1024, mss=1024, initial_rto=20 * MILLISECONDS)
        conn = client.connect(Endpoint("server", 7000), config)
        conn.on_rtt_sample = lambda c, rtt: samples.append(rtt)
        for i in range(30):
            conn.send_message(i, 1024)
        sim.run_until(2 * SECONDS)
        # All recorded samples must be plausible RTTs (no t0-based
        # garbage from retransmitted segments).
        assert samples
        assert all(s >= 2 * ONE_WAY for s in samples)


class TestRttSamples:
    def test_handshake_plus_data_samples(self, sim, pair):
        make_echo_server(pair)
        samples = []
        conn = pair.client.connect(pair.server_endpoint())
        conn.on_rtt_sample = lambda c, rtt: samples.append(rtt)
        conn.send_message("x", 100)
        run_pair(sim)
        assert samples
        for sample in samples:
            assert sample == pytest.approx(2 * ONE_WAY, rel=0.1)
        assert conn.srtt == pytest.approx(2 * ONE_WAY, rel=0.1)


class TestDelayedAckIntegration:
    def test_single_segment_acked_after_delay(self, sim, pair):
        received = make_echo_server(pair, reply_size=64)
        config = TransportConfig(
            ack_policy_factory=lambda: DelayedAck(timeout=5 * MILLISECONDS)
        )
        # Server side gets delayed acks too via listener config.
        samples = []
        conn = pair.client.connect(pair.server_endpoint(), config)
        conn.on_rtt_sample = lambda c, rtt: samples.append(rtt)
        conn.send_message("only", 100)
        run_pair(sim, duration=50 * MILLISECONDS)
        assert [m for _t, m in received] == ["only"]
        # The data RTT sample reflects the server's immediate-ack policy
        # (default listener config), so the reply still flowed promptly.
        assert conn.stats.messages_delivered == 1
