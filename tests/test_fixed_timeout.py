"""Algorithm 1 — FIXEDTIMEOUT, exactly per the paper's pseudocode."""

import pytest

from repro.core.fixed_timeout import FixedTimeout
from repro.units import MICROSECONDS


DELTA = 64 * MICROSECONDS
RTT = 500 * MICROSECONDS


class TestFirstPacket:
    def test_first_packet_produces_no_sample(self):
        ft = FixedTimeout(DELTA)
        assert ft.observe(1000) is None

    def test_first_packet_initializes_state(self):
        ft = FixedTimeout(DELTA)
        ft.observe(1000)
        assert ft.time_last_batch == 1000
        assert ft.time_last_pkt == 1000


class TestBatchDetection:
    def test_gap_below_delta_keeps_batch(self):
        ft = FixedTimeout(DELTA)
        ft.observe(0)
        assert ft.observe(DELTA) is None          # gap == delta: NOT a new batch
        assert ft.observe(2 * DELTA) is None      # still within

    def test_gap_above_delta_emits_batch_gap(self):
        ft = FixedTimeout(DELTA)
        ft.observe(0)
        sample = ft.observe(RTT)
        assert sample == RTT                      # gap from batch head

    def test_sample_measures_head_to_head_not_gap(self):
        """T_LB is last-batch-head -> new-batch-head, not the idle gap."""
        ft = FixedTimeout(DELTA)
        ft.observe(0)          # batch 1 head
        ft.observe(10_000)     # batch 1, +10us (intra-batch)
        ft.observe(20_000)     # batch 1, +10us
        sample = ft.observe(RTT)  # idle gap is RTT-20us, but T_LB = RTT
        assert sample == RTT

    def test_consecutive_batches_measure_each_interval(self):
        ft = FixedTimeout(DELTA)
        ft.observe(0)
        assert ft.observe(RTT) == RTT
        assert ft.observe(3 * RTT) == 2 * RTT

    def test_strictly_greater_comparison(self):
        """Paper: `now - time_last_pkt > delta`, strict."""
        ft = FixedTimeout(DELTA)
        ft.observe(0)
        assert ft.observe(DELTA) is None
        assert ft.observe(2 * DELTA + 1) == 2 * DELTA + 1


class TestErrorModes:
    def test_too_small_delta_splits_one_batch(self):
        """Low δ: intra-batch gaps become (false) batch boundaries."""
        ft = FixedTimeout(10 * MICROSECONDS)
        ft.observe(0)
        # Packets 20us apart in what is really one batch:
        samples = [ft.observe(t * 20_000) for t in range(1, 5)]
        assert all(s is not None for s in samples)
        assert samples[0] == 20_000  # erroneously low vs true RTT

    def test_too_large_delta_merges_batches(self):
        """High δ: true batch pauses never exceed it; samples rare/huge."""
        ft = FixedTimeout(2 * RTT)
        ft.observe(0)
        # Ten true batches, RTT apart: never a sample.
        for batch in range(1, 10):
            assert ft.observe(batch * RTT) is None
        # One long stall finally splits, spanning all merged batches.
        sample = ft.observe(9 * RTT + 3 * RTT)
        assert sample == 12 * RTT

    def test_sample_counter(self):
        ft = FixedTimeout(DELTA)
        ft.observe(0)
        ft.observe(RTT)
        ft.observe(2 * RTT)
        assert ft.samples_produced == 2


class TestValidation:
    def test_delta_positive(self):
        with pytest.raises(ValueError):
            FixedTimeout(0)
        with pytest.raises(ValueError):
            FixedTimeout(-5)

    def test_repr(self):
        assert "samples=0" in repr(FixedTimeout(100))
