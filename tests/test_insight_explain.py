"""Causal chains from the flight recorder, incl. the golden fig3 case."""

import pytest

from repro.harness.config import PolicyName
from repro.harness.figures import Fig3Config, run_fig3
from repro.insight import InsightConfig, explain_alert, explain_overview, explain_shift
from repro.units import MILLISECONDS, SECONDS


@pytest.fixture(scope="module")
def fig3():
    """One recorded fig3 feedback arm, shared by every test here."""
    return run_fig3(
        Fig3Config(
            seed=2,
            duration=int(1.2 * SECONDS),
            insight=InsightConfig(enabled=True),
        ),
        policies=(PolicyName.FEEDBACK,),
    )


@pytest.fixture(scope="module")
def result(fig3):
    return fig3.results[PolicyName.FEEDBACK.value]


class TestGoldenCausal:
    def test_first_post_fault_shift_names_the_delay_fault(self, fig3, result):
        """The acceptance criterion: on fig3, explain for the first
        post-injection shift names the 1 ms delay window as the
        dominant upstream cause."""
        shifts = result.scenario.feedback.shift_events()
        post = [
            i for i, s in enumerate(shifts) if s.time >= fig3.config.injection_at
        ]
        assert post, "fig3 must shift after the injection"
        text = explain_shift(result, post[0])
        cause = [
            line for line in text.splitlines()
            if line.startswith("dominant upstream cause:")
        ]
        assert len(cause) == 1
        assert "delay" in cause[0]
        assert "server0" in cause[0]

    def test_pre_fault_shift_blames_organic_imbalance(self, fig3, result):
        shifts = result.scenario.feedback.shift_events()
        pre = [
            i for i, s in enumerate(shifts)
            if s.time < fig3.config.injection_at
        ]
        assert pre
        text = explain_shift(result, pre[0])
        assert "organic load imbalance" in text


class TestChainContents:
    def test_chain_has_all_four_layers(self, result):
        text = explain_shift(result, 0)
        assert "triggering sample:" in text
        assert "estimator snapshot" in text
        assert "controller inputs:" in text
        assert "dominant upstream cause:" in text

    def test_triggering_sample_is_on_the_demoted_backend(self, result):
        shifts = result.scenario.feedback.shift_events()
        text = explain_shift(result, 0)
        demoted = shifts[0].from_backend
        trigger = [
            line for line in text.splitlines()
            if line.startswith("triggering sample:")
        ][0]
        assert demoted in trigger

    def test_shift_index_out_of_range(self, result):
        with pytest.raises(IndexError):
            explain_shift(result, 10_000)
        with pytest.raises(IndexError):
            explain_shift(result, -1)

    def test_lookback_narrows_the_fault_attribution(self, fig3, result):
        shifts = result.scenario.feedback.shift_events()
        post = [
            i for i, s in enumerate(shifts)
            if s.time > fig3.config.injection_at + 1 * MILLISECONDS
        ]
        assert post
        # A 1 ms lookback cannot reach back to the injection start, but
        # the window is still *active* at the shift, so it stays dominant.
        text = explain_shift(result, post[0], lookback=1 * MILLISECONDS)
        assert "dominant upstream cause: delay" in text


class TestOverviewAndAlerts:
    def test_overview_lists_shifts(self, result):
        text = explain_overview(result)
        assert "shifts (use --shift N):" in text
        assert "#0 at" in text

    def test_alert_out_of_range_raises(self, result):
        # The default SLO is comfortable for fig3; no alerts fire.
        with pytest.raises(IndexError):
            explain_alert(result, 0)

    def test_explain_requires_the_insight_plane(self):
        bare = run_fig3(
            Fig3Config(seed=2, duration=int(0.4 * SECONDS)),
            policies=(PolicyName.FEEDBACK,),
        ).results[PolicyName.FEEDBACK.value]
        with pytest.raises(ValueError):
            explain_shift(bare, 0)
