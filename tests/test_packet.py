"""Packet model."""

from repro.net.addr import Endpoint
from repro.net.packet import HEADER_BYTES, MessageBoundary, Packet, TcpFlags


def make_packet(**kwargs):
    defaults = dict(src=Endpoint("c", 1), dst=Endpoint("s", 2))
    defaults.update(kwargs)
    return Packet(**defaults)


class TestFlags:
    def test_default_no_flags(self):
        pkt = make_packet()
        assert not pkt.is_syn and not pkt.is_ack and not pkt.is_fin

    def test_syn_ack_combination(self):
        pkt = make_packet(flags=TcpFlags.SYN | TcpFlags.ACK)
        assert pkt.is_syn and pkt.is_ack

    def test_rst(self):
        assert make_packet(flags=TcpFlags.RST).is_rst


class TestSizes:
    def test_empty_packet_is_header_only(self):
        assert make_packet().size_bytes == HEADER_BYTES

    def test_payload_adds(self):
        assert make_packet(payload_len=100).size_bytes == HEADER_BYTES + 100


class TestSequenceSpace:
    def test_plain_data_end_seq(self):
        pkt = make_packet(seq=100, payload_len=50)
        assert pkt.end_seq == 150

    def test_syn_consumes_sequence_number(self):
        pkt = make_packet(seq=0, flags=TcpFlags.SYN)
        assert pkt.end_seq == 1

    def test_fin_consumes_sequence_number(self):
        pkt = make_packet(seq=10, payload_len=5, flags=TcpFlags.FIN)
        assert pkt.end_seq == 16


class TestIdentityAndFlow:
    def test_packet_ids_unique(self):
        assert make_packet().packet_id != make_packet().packet_id

    def test_flow_matches_endpoints(self):
        pkt = make_packet()
        assert pkt.flow.src == pkt.src
        assert pkt.flow.dst == pkt.dst

    def test_describe_mentions_flags_and_flow(self):
        pkt = make_packet(flags=TcpFlags.SYN | TcpFlags.ACK, seq=5)
        text = pkt.describe()
        assert "SYN" in text and "ACK" in text
        assert "c:1->s:2" in text


class TestBoundaries:
    def test_boundaries_travel_with_packet(self):
        boundary = MessageBoundary(end_offset=100, message="msg")
        pkt = make_packet(boundaries=[boundary])
        assert pkt.boundaries[0].message == "msg"
        assert pkt.boundaries[0].end_offset == 100
